package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// The codec mirrors internal/faults: a compact single-line text form
// for CLI flags and a JSON form for schedule files. Text grammar,
// events joined by ';':
//
//	kind@from-to[:param,param,...]
//
// with per-kind params:
//
//	latency@0-64:ms=5,jitter=10[,r=*>worker1]   delay + jitter window
//	reset@0-8:p=0.5                             probabilistic resets
//	drop@3-6:r=client>coordinator               blackhole a route
//	err@0-4:code=503[,p=1]                      synthesized 5xx burst
//	stall@4-8:ms=200                            slow-loris first byte
//	cut@0-10:r=rank1>primary                    asymmetric partition
//
// Windows count per-route request slots, not time. 'r=src>dst' scopes
// an event to one route ('*' wildcards either side; omitting r means
// every route). JSON is either {"events":[...]} or a bare event array;
// Parse auto-detects the form, Load additionally resolves '@path'.

// FormatText renders s in the canonical text form: events sorted by
// (From, To, Kind, Src, Dst), floats in shortest-exact notation, only
// the fields the event's kind uses. Parse(FormatText(s)) reproduces s
// up to event order and normalization.
func FormatText(s Schedule) string {
	var b strings.Builder
	for i, ev := range s.sortedCopy() {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%d-%d", ev.Kind, ev.From, ev.To)
		var ps []string
		switch ev.Kind {
		case Latency:
			ps = append(ps, "ms="+strconv.FormatInt(ev.MS, 10))
			if ev.Jitter > 0 {
				ps = append(ps, "jitter="+strconv.FormatInt(ev.Jitter, 10))
			}
		case Stall:
			ps = append(ps, "ms="+strconv.FormatInt(ev.MS, 10))
		case Err:
			ps = append(ps, "code="+strconv.Itoa(ev.Code))
		}
		if ev.P > 0 && ev.P < 1 {
			ps = append(ps, "p="+strconv.FormatFloat(ev.P, 'g', -1, 64))
		}
		if ev.Src != "*" || ev.Dst != "*" {
			ps = append(ps, "r="+ev.Src+">"+ev.Dst)
		}
		if len(ps) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(ps, ","))
		}
	}
	return b.String()
}

// FormatJSON renders s as indented JSON ({"events":[...]}).
func FormatJSON(s Schedule) string {
	s.Events = s.sortedCopy()
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // Schedule holds only marshalable fields
		panic(err)
	}
	return string(out)
}

// Parse decodes a schedule from either form: inputs starting with '{'
// or '[' are JSON, everything else is the text grammar. The result is
// validated and normalized (fields a kind does not use are zeroed,
// wildcards and defaults made explicit, so parse→format→parse is the
// identity).
func Parse(input string) (Schedule, error) {
	input = strings.TrimSpace(input)
	if input == "" {
		return Schedule{}, nil
	}
	if input[0] == '{' || input[0] == '[' {
		return parseJSON(input)
	}
	return ParseText(input)
}

// Load is Parse plus '@path' indirection: an argument of the form
// "@schedule.json" reads the schedule from that file.
func Load(arg string) (Schedule, error) {
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: %w", err)
		}
		return Parse(string(data))
	}
	return Parse(arg)
}

func parseJSON(input string) (Schedule, error) {
	var s Schedule
	if input[0] == '[' {
		if err := json.Unmarshal([]byte(input), &s.Events); err != nil {
			return Schedule{}, fmt.Errorf("chaos: bad JSON schedule: %w", err)
		}
	} else if err := json.Unmarshal([]byte(input), &s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: bad JSON schedule: %w", err)
	}
	return finish(s)
}

// ParseText decodes the text grammar.
func ParseText(input string) (Schedule, error) {
	var s Schedule
	for _, seg := range strings.Split(input, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		ev, err := parseEvent(seg)
		if err != nil {
			return Schedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	return finish(s)
}

func finish(s Schedule) (Schedule, error) {
	for i := range s.Events {
		s.Events[i] = normalizeEvent(s.Events[i])
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseEvent(seg string) (Event, error) {
	head, params, hasParams := strings.Cut(seg, ":")
	kind, win, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("chaos: event %q: want kind@from-to", seg)
	}
	fromS, toS, ok := strings.Cut(win, "-")
	if !ok {
		return Event{}, fmt.Errorf("chaos: event %q: want kind@from-to", seg)
	}
	from, err1 := strconv.ParseInt(fromS, 10, 64)
	to, err2 := strconv.ParseInt(toS, 10, 64)
	if err1 != nil || err2 != nil || from < 0 || to < 0 {
		return Event{}, fmt.Errorf("chaos: event %q: bad window %q", seg, win)
	}
	ev := Event{Kind: Kind(strings.TrimSpace(kind)), From: from, To: to}
	if !hasParams {
		return ev, nil
	}
	for _, p := range strings.Split(params, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return Event{}, fmt.Errorf("chaos: event %q: bad param %q", seg, p)
		}
		switch key {
		case "r":
			src, dst, ok := strings.Cut(val, ">")
			if !ok || src == "" || dst == "" {
				return Event{}, fmt.Errorf("chaos: event %q: route %q: want src>dst", seg, val)
			}
			ev.Src, ev.Dst = src, dst
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("chaos: event %q: bad p=%q", seg, val)
			}
			ev.P = f
		case "ms":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("chaos: event %q: bad ms=%q", seg, val)
			}
			ev.MS = n
		case "jitter":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Event{}, fmt.Errorf("chaos: event %q: bad jitter=%q", seg, val)
			}
			ev.Jitter = n
		case "code":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("chaos: event %q: bad code=%q", seg, val)
			}
			ev.Code = n
		default:
			return Event{}, fmt.Errorf("chaos: event %q: unknown param %q", seg, key)
		}
	}
	return ev, nil
}

// normalizeEvent zeroes every field the event's kind does not use and
// makes defaults explicit (P=1, Err code 503, '*' route wildcards), so
// schedules arriving via permissive JSON format identically to their
// text-parsed equivalents.
func normalizeEvent(ev Event) Event {
	n := Event{Kind: ev.Kind, From: ev.From, To: ev.To, Src: ev.Src, Dst: ev.Dst, P: ev.P}
	if n.Src == "" {
		n.Src = "*"
	}
	if n.Dst == "" {
		n.Dst = "*"
	}
	if n.P == 0 {
		n.P = 1
	}
	switch ev.Kind {
	case Latency:
		n.MS, n.Jitter = ev.MS, ev.Jitter
	case Stall:
		n.MS = ev.MS
	case Err:
		n.Code = ev.Code
		if n.Code == 0 {
			n.Code = 503
		}
	}
	return n
}
