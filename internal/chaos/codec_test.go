package chaos

import (
	"strings"
	"testing"
)

func TestParseTextRoundTrip(t *testing.T) {
	cases := []string{
		"cut@0-4:r=rank1>primary",
		"drop@3-6:r=client>coordinator",
		"err@0-4:code=503",
		"err@0-4:code=502,p=0.25",
		"latency@0-64:ms=5,jitter=10",
		"latency@0-64:ms=5,jitter=10,r=*>worker1",
		"reset@0-8:p=0.5",
		"stall@4-8:ms=200",
	}
	for _, in := range cases {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := FormatText(s); got != in {
			t.Errorf("Parse(%q) formats as %q", in, got)
		}
	}
}

func TestParseDefaultsNormalized(t *testing.T) {
	s, err := Parse("err@0-4;reset@0-2")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		if ev.Src != "*" || ev.Dst != "*" {
			t.Errorf("%s: route not wildcarded: %q>%q", ev.Kind, ev.Src, ev.Dst)
		}
		if ev.P != 1 {
			t.Errorf("%s: P=%v, want default 1", ev.Kind, ev.P)
		}
	}
	if s.Events[0].Code != 503 {
		t.Errorf("err default code = %d, want 503", s.Events[0].Code)
	}
	// Defaults made explicit must not leak back into the text form.
	if got := FormatText(s); got != "reset@0-2;err@0-4:code=503" {
		t.Errorf("FormatText = %q", got)
	}
}

func TestParseJSONBothForms(t *testing.T) {
	want, err := Parse("stall@4-8:ms=200;err@0-4:code=503")
	if err != nil {
		t.Fatal(err)
	}
	asObj := FormatJSON(want)
	asArr := strings.TrimSpace(asObj)
	asArr = asArr[strings.Index(asArr, "["):]
	asArr = asArr[:strings.LastIndex(asArr, "]")+1]
	for _, in := range []string{asObj, asArr} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(JSON): %v\n%s", err, in)
		}
		if FormatText(got) != FormatText(want) {
			t.Errorf("JSON round trip: got %q want %q", FormatText(got), FormatText(want))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"latency@0-4",            // needs ms or jitter
		"stall@0-4",              // needs ms
		"stall@0-4:ms=0",         // needs ms>0
		"bogus@0-4",              // unknown kind
		"reset@4-2",              // inverted window
		"reset@0-4:p=1.5",        // p out of range
		"err@0-4:code=99",        // bad status
		"cut@0-4:r=oneword",      // route without '>'
		"reset@0-4:unknown=1",    // unknown param
		"reset@x-4",              // bad window
		"latency@0-4:ms=-3,p=.5", // negative delay
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestShippedSchedulesValid(t *testing.T) {
	shipped := Shipped()
	for _, name := range []string{"burst-5xx-stall", "reset-storm", "partition-each-rank"} {
		s, ok := shipped[name]
		if !ok {
			t.Fatalf("shipped schedule %q missing", name)
		}
		if s.Empty() {
			t.Errorf("shipped schedule %q is empty", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("shipped schedule %q: %v", name, err)
		}
	}
}

func FuzzChaosScheduleRoundTrip(f *testing.F) {
	f.Add("err@0-4:code=503;latency@0-64:ms=5,jitter=10")
	f.Add("cut@0-4:r=rank1>primary")
	f.Add("reset@0-8:p=0.5;stall@4-8:ms=200")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		text := FormatText(s)
		s2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", text, input, err)
		}
		if got := FormatText(s2); got != text {
			t.Fatalf("format not a fixed point: %q -> %q", text, got)
		}
	})
}
