package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, cli *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cli.Do(req)
}

func TestTransportPassThroughAndNilInjector(t *testing.T) {
	ts := testServer(t)
	var nilIn *Injector
	cli := &http.Client{Transport: nilIn.Transport("c", nil)}
	resp, err := get(t, cli, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Errorf("nil injector altered the response: %q", b)
	}

	in := MustInjector(Schedule{}, 1)
	cli = &http.Client{Transport: in.Transport("c", nil)}
	resp, err = get(t, cli, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Errorf("empty schedule altered the response: %q", b)
	}
	if len(in.Transcript()) != 0 {
		t.Errorf("empty schedule produced transcript entries: %v", in.Transcript())
	}
}

func TestTransportSynthesizes5xx(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer ts.Close()
	in := MustInjector(mustParse(t, "err@0-2:code=503"), 1)
	cli := &http.Client{Transport: in.Transport("c", nil)}
	for i := 0; i < 2; i++ {
		resp, err := get(t, cli, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("attempt %d: status %d, want injected 503", i, resp.StatusCode)
		}
	}
	if hits != 0 {
		t.Errorf("server saw %d requests during the 5xx window, want 0", hits)
	}
	resp, err := get(t, cli, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || hits != 1 {
		t.Errorf("after window: status=%d server hits=%d, want 200/1", resp.StatusCode, hits)
	}
}

func TestTransportResetAndCutErrors(t *testing.T) {
	ts := testServer(t)
	in := MustInjector(mustParse(t, "reset@0-1;cut@1-2"), 1)
	cli := &http.Client{Transport: in.Transport("c", nil)}
	if _, err := get(t, cli, ts.URL); !errors.Is(err, ErrReset) {
		t.Errorf("slot 0: err=%v, want ErrReset", err)
	}
	if _, err := get(t, cli, ts.URL); !errors.Is(err, ErrCut) {
		t.Errorf("slot 1: err=%v, want ErrCut", err)
	}
	if _, err := get(t, cli, ts.URL); err != nil {
		t.Errorf("slot 2 (healed): %v", err)
	}
}

func TestTransportBlackholeHonorsContext(t *testing.T) {
	ts := testServer(t)
	in := MustInjector(mustParse(t, "drop@0-1"), 1)
	cli := &http.Client{Transport: in.Transport("c", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := cli.Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if !errors.Is(err, ErrBlackhole) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err=%v, want blackhole/deadline", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("blackhole ignored the context deadline (%v)", d)
	}
}

func TestTransportLatencyAndStallUseSleepHook(t *testing.T) {
	ts := testServer(t)
	var slept []time.Duration
	in := MustInjector(mustParse(t, "latency@0-1:ms=40;stall@1-2:ms=70"), 1)
	in.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	cli := &http.Client{Transport: in.Transport("c", nil)}
	for i := 0; i < 2; i++ {
		resp, err := get(t, cli, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
			t.Errorf("attempt %d: body %q", i, b)
		}
		resp.Body.Close()
	}
	if len(slept) != 2 || slept[0] != 40*time.Millisecond || slept[1] != 70*time.Millisecond {
		t.Errorf("sleep calls = %v, want [40ms 70ms]", slept)
	}
	tr := in.Transcript()
	if len(tr) != 2 || tr[0].Kind != Latency || tr[1].Kind != Stall {
		t.Errorf("transcript = %v", tr)
	}
}

func TestTransportRegisteredEndpointNames(t *testing.T) {
	ts := testServer(t)
	u, _ := url.Parse(ts.URL)
	in := MustInjector(mustParse(t, "reset@0-9:r=client>primary"), 1)
	in.Register("primary", u.Host)
	cli := &http.Client{Transport: in.Transport("client", nil)}
	if _, err := get(t, cli, ts.URL); !errors.Is(err, ErrReset) {
		t.Errorf("named route miss: err=%v, want ErrReset", err)
	}
	tr := in.Transcript()
	if len(tr) != 1 || tr[0].Route != "client>primary" {
		t.Errorf("transcript route = %v, want client>primary", tr)
	}
	if !strings.Contains(tr[0].String(), "client>primary 0 reset") {
		t.Errorf("entry string = %q", tr[0].String())
	}
}
