package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Sentinel errors for injected transport failures. They unwrap from the
// url.Error the http.Client reports, so tests can assert on the exact
// fault that fired.
var (
	// ErrReset is the injected connection-reset failure.
	ErrReset = errors.New("chaos: connection reset by peer")
	// ErrBlackhole is the injected drop: the request was held until
	// its context (or the injector's hold cap) expired.
	ErrBlackhole = errors.New("chaos: request blackholed")
	// ErrCut is the injected partition: the destination is unreachable
	// from this source for the window.
	ErrCut = errors.New("chaos: route cut")
)

// Transport returns an http.RoundTripper that injects the schedule into
// requests sent by the named source endpoint. base nil means
// http.DefaultTransport. A nil *Injector returns base unchanged, so
// callers can thread the hook unconditionally with zero prod-path cost.
func (in *Injector) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil {
		return base
	}
	return &roundTripper{in: in, from: from, base: base}
}

type roundTripper struct {
	in   *Injector
	from string
	base http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	in := rt.in
	route := Route(rt.from, in.endpoint(req.URL.Host))
	_, act := in.take(route, req.Method, req.URL.Path)
	switch act.kind {
	case "":
		return rt.base.RoundTrip(req)
	case Latency:
		if err := in.Sleep(req.Context(), act.delay); err != nil {
			discard(req)
			return nil, err
		}
		return rt.base.RoundTrip(req)
	case Reset:
		discard(req)
		return nil, fmt.Errorf("%s: %w", route, ErrReset)
	case Cut:
		discard(req)
		return nil, fmt.Errorf("%s: %w", route, ErrCut)
	case Drop:
		discard(req)
		if err := in.Sleep(req.Context(), in.Hold); err != nil {
			return nil, fmt.Errorf("%s: %w: %w", route, ErrBlackhole, err)
		}
		return nil, fmt.Errorf("%s: %w", route, ErrBlackhole)
	case Err:
		discard(req)
		return synthesize(req, act.code), nil
	case Stall:
		resp, err := rt.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &stallBody{rc: resp.Body, req: req, in: in, delay: act.delay}
		return resp, nil
	}
	return rt.base.RoundTrip(req)
}

// discard consumes and closes the request body, as RoundTrippers must
// when they do not forward the request.
func discard(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// synthesize forges an HTTP error response without contacting the
// destination, the way a proxy or overloaded front-end would.
func synthesize(req *http.Request, code int) *http.Response {
	body := fmt.Sprintf("chaos: injected %d\n", code)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// stallBody delays the first byte of the response — a slow-loris read.
// The delay honors the request context so a deadlined caller is not
// held hostage.
type stallBody struct {
	rc    io.ReadCloser
	req   *http.Request
	in    *Injector
	delay time.Duration
	once  sync.Once
	err   error
}

func (s *stallBody) Read(p []byte) (int, error) {
	s.once.Do(func() {
		s.err = s.in.Sleep(s.req.Context(), s.delay)
	})
	if s.err != nil {
		return 0, s.err
	}
	return s.rc.Read(p)
}

func (s *stallBody) Close() error { return s.rc.Close() }
