package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"
)

func startProxy(t *testing.T, in *Injector, target string) string {
	t.Helper()
	p := &Proxy{Injector: in, From: "client", To: "server", Target: target}
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return addr
}

func TestProxyForwardsCleanConnections(t *testing.T) {
	ts := testServer(t)
	u, _ := url.Parse(ts.URL)
	in := MustInjector(Schedule{}, 1)
	addr := startProxy(t, in, u.Host)
	resp, err := http.Get("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Errorf("proxied body = %q, want ok", b)
	}
}

func TestProxyResetsConnections(t *testing.T) {
	ts := testServer(t)
	u, _ := url.Parse(ts.URL)
	in := MustInjector(mustParse(t, "reset@0-1"), 1)
	addr := startProxy(t, in, u.Host)
	cli := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := cli.Get("http://" + addr); err == nil {
		t.Error("reset connection served a response")
	}
	resp, err := cli.Get("http://" + addr)
	if err != nil {
		t.Fatalf("slot 1 (healed): %v", err)
	}
	resp.Body.Close()
	tr := in.Transcript()
	if len(tr) != 1 || tr[0].Kind != Reset || tr[0].Route != "client>server" {
		t.Errorf("transcript = %v", tr)
	}
}

func TestProxyBlackholeHoldsThenCloses(t *testing.T) {
	ts := testServer(t)
	u, _ := url.Parse(ts.URL)
	in := MustInjector(mustParse(t, "drop@0-1"), 1)
	in.Hold = 50 * time.Millisecond
	addr := startProxy(t, in, u.Host)
	cli := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	start := time.Now()
	if _, err := cli.Get("http://" + addr); err == nil {
		t.Error("blackholed connection served a response")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("blackhole released after %v, want ≥ hold cap", d)
	}
}

func TestProxyLatencyDelaysForwarding(t *testing.T) {
	ts := testServer(t)
	u, _ := url.Parse(ts.URL)
	var mu sync.Mutex
	var slept []time.Duration
	in := MustInjector(mustParse(t, "latency@0-1:ms=30"), 1)
	in.Sleep = func(_ context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return nil
	}
	addr := startProxy(t, in, u.Host)
	cli := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := cli.Get("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 30*time.Millisecond {
		t.Errorf("sleep calls = %v, want [30ms]", slept)
	}
}

func TestProxyServesHTTPTrafficUnderSchedule(t *testing.T) {
	// An end-to-end sanity pass: an http.Client talking through the
	// proxy with a mixed schedule still completes requests outside the
	// fault windows.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer ts.Close()
	u, _ := url.Parse(ts.URL)
	in := MustInjector(mustParse(t, "reset@0-2;stall@2-3:ms=1"), 1)
	addr := startProxy(t, in, u.Host)
	cli := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	var okCount, errCount int
	for i := 0; i < 5; i++ {
		resp, err := cli.Get("http://" + addr)
		if err != nil {
			errCount++
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) == "payload" {
			okCount++
		}
	}
	if errCount != 2 || okCount != 3 {
		t.Errorf("errs=%d ok=%d, want 2 resets and 3 served (one stalled)", errCount, okCount)
	}
}
