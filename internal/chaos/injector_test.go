package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustParse(t testing.TB, text string) Schedule {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return s
}

func noSleep(context.Context, time.Duration) error { return nil }

func TestWindowsCountRouteSlots(t *testing.T) {
	in := MustInjector(mustParse(t, "err@2-4:code=503,r=a>b"), 1)
	in.Sleep = noSleep
	for slot := 0; slot < 6; slot++ {
		_, act := in.take("a>b", "GET", "/x")
		if want := slot >= 2 && slot < 4; (act.kind != "") != want {
			t.Errorf("slot %d: injected=%v, want %v", slot, act.kind != "", want)
		}
	}
	// Another route has its own slot counter and never matches a>b.
	if _, act := in.take("a>c", "GET", "/x"); act.kind != "" {
		t.Errorf("route a>c hit an a>b-scoped event")
	}
}

func TestWildcardRoutes(t *testing.T) {
	in := MustInjector(mustParse(t, "reset@0-1:r=*>primary"), 1)
	if _, act := in.take("rank1>primary", "GET", "/x"); act.kind != Reset {
		t.Errorf("rank1>primary slot 0: got %q, want reset", act.kind)
	}
	if _, act := in.take("rank1>worker", "GET", "/x"); act.kind != "" {
		t.Errorf("rank1>worker matched *>primary")
	}
}

func TestProbabilisticDecisionsDependOnlyOnSeedRouteSlot(t *testing.T) {
	const text = "reset@0-1000:p=0.5"
	a := MustInjector(mustParse(t, text), 7)
	b := MustInjector(mustParse(t, text), 7)
	c := MustInjector(mustParse(t, text), 8)
	var fires, diff int
	for slot := 0; slot < 1000; slot++ {
		_, actA := a.take("x>y", "GET", "/")
		_, actB := b.take("x>y", "GET", "/")
		_, actC := c.take("x>y", "GET", "/")
		if actA.kind != actB.kind {
			t.Fatalf("slot %d: same seed diverged", slot)
		}
		if actA.kind != actC.kind {
			diff++
		}
		if actA.kind == Reset {
			fires++
		}
	}
	if fires < 400 || fires > 600 {
		t.Errorf("p=0.5 fired %d/1000 times", fires)
	}
	if diff == 0 {
		t.Errorf("seeds 7 and 8 produced identical decision streams")
	}
}

func TestFirstMatchingEventWins(t *testing.T) {
	// Canonical order sorts by From: the err event (From 0) precedes
	// the reset event (From 0, kind "err" < "reset" lexically).
	in := MustInjector(mustParse(t, "reset@0-4;err@0-4:code=502"), 1)
	_, act := in.take("a>b", "GET", "/")
	if act.kind != Err || act.code != 502 {
		t.Errorf("got %q code=%d, want err 502", act.kind, act.code)
	}
}

// TestTranscriptDeterministicAcrossParallelism is the acceptance
// criterion: the same schedule + seed must produce a byte-identical
// injected-event transcript at any parallelism. Each goroutine owns a
// distinct set of routes (the workload's per-route request order is
// deterministic); cross-route interleaving varies freely with the
// scheduler and must not leak into the transcript.
func TestTranscriptDeterministicAcrossParallelism(t *testing.T) {
	const (
		routes   = 32
		perRoute = 50
		schedule = "reset@0-20:p=0.3;err@20-35:code=503,p=0.5;latency@35-50:ms=1,jitter=9"
	)
	run := func(workers int) []byte {
		in := MustInjector(mustParse(t, schedule), 42)
		in.Sleep = noSleep
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := w; r < routes; r += workers {
					route := fmt.Sprintf("src%d>dst%d", r, r)
					for s := 0; s < perRoute; s++ {
						in.take(route, "GET", "/v1/jobs")
					}
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := in.WriteTranscript(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(1)
	if len(ref) == 0 {
		t.Fatal("transcript empty: schedule injected nothing")
	}
	for _, workers := range []int{2, 8, 16} {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Errorf("transcript at %d workers differs from serial transcript", workers)
		}
	}
}

func TestTallyCountsByMethodAndPathClass(t *testing.T) {
	in := MustInjector(Schedule{}, 1)
	in.take("c>p", "POST", "/v1/jobs")
	in.take("c>p", "POST", "/v1/jobs")
	in.take("c>p", "GET", "/v1/jobs/abc123/results")
	in.take("c>p", "GET", "/v1/jobs/zzz999/results")
	if got := in.RequestsMatching("POST /v1/jobs"); got != 2 {
		t.Errorf("POST /v1/jobs tally = %d, want 2", got)
	}
	if got := in.RequestsMatching("GET /v1/jobs"); got != 2 {
		t.Errorf("GET /v1/jobs tally = %d, want 2 (path class should fold job IDs)", got)
	}
	if got := in.Requests(); got != 4 {
		t.Errorf("Requests() = %d, want 4", got)
	}
}
