package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1b := New(7).Split(1)
	for i := 0; i < 200; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatalf("same-label splits diverged at %d", i)
		}
	}
	// Different labels should produce different streams.
	c1 = New(7).Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams 1 and 2 overlap in %d/100 outputs", same)
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5) // must not consume parent state
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split perturbed the parent stream at %d", i)
		}
	}
}

func TestIntNRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.IntN(17)
		if v < 0 || v >= 17 {
			t.Fatalf("IntN(17) = %d out of range", v)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(4)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64NUniformity(t *testing.T) {
	s := New(6)
	const buckets = 8
	counts := make([]int, buckets)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[s.Uint64N(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(8)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntRange(-3,3) hit %d/7 values", len(seen))
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBoolProbabilities(t *testing.T) {
	s := New(12)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestBinomialBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 200; i++ {
		k := s.Binomial(10, 0.5)
		if k < 0 || k > 10 {
			t.Fatalf("Binomial(10,0.5) = %d", k)
		}
	}
	if s.Binomial(5, 0) != 0 {
		t.Fatal("Binomial(n,0) != 0")
	}
	if s.Binomial(5, 1) != 5 {
		t.Fatal("Binomial(n,1) != n")
	}
}

func TestSeedAccessor(t *testing.T) {
	s := New(99)
	if s.Seed() != 99 {
		t.Fatalf("Seed() = %d", s.Seed())
	}
	if s.Split(1).Seed() != 99 {
		t.Fatal("child Seed() differs from root")
	}
}

// Property: IntN output is always within range, for arbitrary seeds and n.
func TestQuickIntNInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.IntN(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mix is a bijection on its low bits (approximated: injective on
// a random sample → no collisions expected).
func TestQuickSplitDeterministic(t *testing.T) {
	f := func(seed, label uint64) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		for i := 0; i < 10; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += s.Uint64()
	}
	_ = acc
}

func BenchmarkIntN(b *testing.B) {
	s := New(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += s.IntN(1000)
	}
	_ = acc
}

func TestForRunDeterministic(t *testing.T) {
	a := ForRun(7, 3)
	b := ForRun(7, 3)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("ForRun streams with equal (base, index) differ")
		}
	}
}

func TestForRunIndependent(t *testing.T) {
	// Distinct indices, and the plain Split namespace, must all disagree.
	a := ForRun(7, 3).Uint64()
	if b := ForRun(7, 4).Uint64(); b == a {
		t.Fatal("adjacent run indices collide")
	}
	if c := New(7).Split(3).Uint64(); c == a {
		t.Fatal("ForRun collides with the bare Split namespace")
	}
	if d := ForRun(8, 3).Uint64(); d == a {
		t.Fatal("distinct base seeds collide")
	}
}
