// Package rng provides a small deterministic, splittable random number
// source used everywhere in the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// experiment is parameterized by a single root seed, and every component
// (arrival process, loss model, tie-breaking, each parallel worker) derives
// its own independent stream with Split. Streams derived with the same
// labels from the same root seed are identical across runs and across
// GOMAXPROCS settings.
//
// The generator is PCG-XSL-RR 128/64 (the same algorithm as
// math/rand/v2's PCG), implemented here directly so the package has no
// dependency on global process state and so stream derivation is explicit.
package rng

import "math/bits"

// Source is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	hi, lo uint64 // 128-bit PCG state
	seed   uint64 // root seed, retained so Split can derive children
	path   uint64 // mixed label path from the root
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{seed: seed, path: 0}
	s.reset()
	return s
}

func (s *Source) reset() {
	// Expand (seed, path) into 128 bits of state via splitmix64.
	x := s.seed ^ mix(s.path)
	s.lo = mix(x)
	s.hi = mix(x + 0x9e3779b97f4a7c15)
	// Warm up: PCG recommends advancing once after seeding.
	s.next()
}

// mix is splitmix64's finalizer: a bijective 64-bit hash.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream identified by label. Children
// with distinct labels are statistically independent; the same (seed,
// label-path) always yields the same stream.
func (s *Source) Split(label uint64) *Source {
	c := &Source{seed: s.seed, path: mix(s.path ^ mix(label+0x632be59bd9b4e019))}
	c.reset()
	return c
}

// next advances the 128-bit LCG state and returns the permuted output
// (PCG-XSL-RR 128/64).
func (s *Source) next() uint64 {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	// state = state * mul + inc (128-bit arithmetic)
	carry, lo := bits.Mul64(s.lo, mulLo)
	hi := s.hi*mulLo + s.lo*mulHi + carry
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	s.hi, s.lo = hi, lo
	// output = rotr(hi ^ lo, hi >> 58)
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.next() }

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 { return int64(s.next() >> 1) }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	return int(s.Uint64N(uint64(n)))
}

// Int64N returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int64N(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64N with non-positive n")
	}
	return int64(s.Uint64N(uint64(n)))
}

// Uint64N returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64N with zero n")
	}
	hi, lo := bits.Mul64(s.next(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.next(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Int64N(hi-lo+1)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		if i != j {
			swap(i, j)
		}
	}
}

// Binomial returns a sample of Binomial(n, p) by direct simulation.
// It is O(n); the simulator only uses it with small n (per-node fan-out).
func (s *Source) Binomial(n int64, p float64) int64 {
	var k int64
	for i := int64(0); i < n; i++ {
		if s.Bool(p) {
			k++
		}
	}
	return k
}

// Seed returns the root seed this Source (or its ancestors) was created
// with. Useful for labelling experiment outputs.
func (s *Source) Seed() uint64 { return s.seed }

// runStream is the label namespace reserved for per-run sweep streams, so
// ForRun(base, i) can never collide with an experiment's New(base).Split(i).
const runStream = 0x52554e53 // "RUNS"

// ForRun returns the canonical independent stream for run number index of
// a sweep rooted at base. The stream depends only on (base, index): it is
// identical across processes, GOMAXPROCS settings and worker schedules,
// which is what makes parallel sweeps bit-reproducible.
func ForRun(base, index uint64) *Source {
	return New(base).Split(runStream).Split(index)
}
