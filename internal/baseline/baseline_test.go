package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
)

func thetaSpec(paths, length int, in, out int64) *core.Spec {
	g := graph.ThetaGraph(paths, length)
	return core.NewSpec(g).SetSource(0, in).SetSink(1, out)
}

func TestFlowRouterStableOnTheta(t *testing.T) {
	s := thetaSpec(3, 3, 3, 3)
	fr, err := NewFlowRouter(s, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Hops() != 9 { // 3 paths × 3 edges
		t.Fatalf("hops = %d, want 9", fr.Hops())
	}
	e := core.NewEngine(s, fr)
	tot := e.Run(500)
	if tot.Violations != 0 {
		t.Fatalf("violations = %d", tot.Violations)
	}
	// The pipeline holds at most one packet per hop plus the fresh
	// injection: bounded far below divergence.
	if tot.PeakQueued > 30 {
		t.Fatalf("flow router queued %d on a feasible network", tot.PeakQueued)
	}
	if tot.Extracted == 0 {
		t.Fatal("flow router delivered nothing")
	}
}

func TestFlowRouterCarriesFStarOnOverload(t *testing.T) {
	// Infeasible demand: the router is still built and its path system
	// carries f* (here 1), the best any algorithm can do.
	s := core.NewSpec(graph.Line(3)).SetSource(0, 5).SetSink(2, 5)
	fr, err := NewFlowRouter(s, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Hops() != 2 { // one unit path over two edges
		t.Fatalf("hops = %d, want 2", fr.Hops())
	}
}

func TestFlowRouterRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(3, 1)
	if _, err := NewFlowRouter(s, flow.NewPushRelabel()); err == nil {
		t.Fatal("disconnected source/sink accepted")
	}
}

func TestFlowRouterSaturatedStillDrains(t *testing.T) {
	// Saturated line: in == capacity of the unique path. The flow router
	// keeps the pipeline full but bounded.
	s := core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
	fr, err := NewFlowRouter(s, flow.NewPushRelabel())
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(s, fr)
	tot := e.Run(400)
	if tot.PeakQueued > 10 {
		t.Fatalf("saturated line queued %d under the flow router", tot.PeakQueued)
	}
	if tot.Extracted < 300 {
		t.Fatalf("throughput too low: %d/400", tot.Extracted)
	}
}

func TestFullGradientStable(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	e := core.NewEngine(s, NewFullGradient())
	tot := e.Run(500)
	if tot.Violations != 0 {
		t.Fatalf("violations = %d", tot.Violations)
	}
	if tot.PeakQueued > 100 {
		t.Fatalf("full-gradient queued %d on an unsaturated network", tot.PeakQueued)
	}
}

func TestFullGradientPrefersSteepest(t *testing.T) {
	// Hub q=1 with leaves 0 and 3: budget 1 must go to the leaf with
	// queue 0 (gradient 5) not 3 (gradient 2).
	g := graph.Star(3)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(1, 1).SetSink(2, 1)
	sn := &core.Snapshot{Spec: s, Q: []int64{5, 3, 0}, Declared: []int64{5, 3, 0}}
	sends := NewFullGradient().Plan(sn, nil)
	// node 0 budget 5 → sends on both downhill edges; node 1 (q=3) also
	// downhill toward leaf 2? they are not adjacent in a star. Check the
	// steepest-first order: first send from node 0 goes to leaf 2.
	if len(sends) == 0 || sends[0].To(g) != 2 {
		t.Fatalf("steepest-first violated: %+v", sends)
	}
}

func TestShortestPathDeliversOnLine(t *testing.T) {
	s := core.NewSpec(graph.Line(5)).SetSource(0, 1).SetSink(4, 1)
	e := core.NewEngine(s, NewShortestPath(s))
	tot := e.Run(300)
	if tot.Extracted < 250 {
		t.Fatalf("shortest-path delivered %d/300", tot.Extracted)
	}
	if tot.PeakQueued > 10 {
		t.Fatalf("shortest-path queued %d on a line", tot.PeakQueued)
	}
}

func TestShortestPathIgnoresGradient(t *testing.T) {
	// Node 1 on a line toward sink 2, with a huge queue at 2's... the
	// router must still push toward the sink even if the next hop has a
	// larger queue (that's its defining flaw).
	s := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 1)
	sp := NewShortestPath(s)
	sn := &core.Snapshot{Spec: s, Q: []int64{1, 50, 0}, Declared: []int64{1, 50, 0}}
	sends := sp.Plan(sn, nil)
	fromZero := false
	for _, send := range sends {
		if send.From == 0 {
			fromZero = true
		}
	}
	if !fromZero {
		t.Fatalf("shortest-path should push uphill into congestion: %+v", sends)
	}
}

func TestRandomForwardMoves(t *testing.T) {
	s := thetaSpec(2, 2, 1, 2)
	e := core.NewEngine(s, NewRandomForward(rng.New(5)))
	tot := e.Run(300)
	if tot.Sent == 0 {
		t.Fatal("random forward never sent")
	}
	// Random walks still find the sink on a small graph.
	if tot.Extracted == 0 {
		t.Fatal("random forward never delivered")
	}
}

func TestNullRouterHoardsEverything(t *testing.T) {
	s := thetaSpec(2, 2, 1, 2)
	e := core.NewEngine(s, Null{})
	tot := e.Run(100)
	if tot.Sent != 0 || tot.Extracted != 0 {
		t.Fatalf("null router acted: %+v", tot)
	}
	if tot.FinalQueued != 100 {
		t.Fatalf("stored = %d, want 100", tot.FinalQueued)
	}
}

func TestRouterNames(t *testing.T) {
	s := thetaSpec(2, 2, 1, 2)
	fr, _ := NewFlowRouter(s, flow.NewPushRelabel())
	for _, r := range []core.Router{fr, NewFullGradient(), NewShortestPath(s), NewRandomForward(rng.New(1)), Null{}} {
		if r.Name() == "" {
			t.Fatalf("%T has empty name", r)
		}
	}
}

func TestAllRoutersPhysical(t *testing.T) {
	// Every router must produce only engine-acceptable sends on a busy
	// multigraph (collisions are allowed for random/gradient routers; hard
	// violations are not).
	r := rng.New(11)
	g := graph.RandomMultigraph(12, 30, r)
	s := core.NewSpec(g).SetSource(0, 2).SetSink(11, 3)
	fr, err := NewFlowRouter(s, flow.NewPushRelabel())
	routers := []core.Router{NewFullGradient(), NewShortestPath(s), NewRandomForward(r.Split(1)), Null{}}
	if err == nil {
		routers = append(routers, fr)
	}
	for _, rt := range routers {
		e := core.NewEngine(s, rt)
		tot := e.Run(100)
		if tot.Violations != 0 {
			t.Errorf("%s: %d violations", rt.Name(), tot.Violations)
		}
		for v, q := range e.Q {
			if q < 0 {
				t.Errorf("%s: negative queue at %d", rt.Name(), v)
			}
		}
	}
}
