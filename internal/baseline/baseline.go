// Package baseline implements the routing policies LGG is compared
// against in the experiments:
//
//   - FlowRouter: the paper's "optimal algorithm consisting in sending
//     the packets through the links of a maximum flow" (Section II-B).
//     It is centralized and clairvoyant: it precomputes a maximum-flow
//     path system and shuttles packets along it.
//   - FullGradient: a backpressure-style variant in the spirit of
//     Tassiulas–Ephremides [3]: it transmits on every strictly downhill
//     link, allocating the node budget to the steepest gradients first
//     (LGG allocates to the smallest queues first).
//   - ShortestPath: hot-potato forwarding toward the nearest sink,
//     ignoring queue gradients entirely.
//   - RandomForward: forwards on uniformly chosen incident links.
//   - Null: never transmits (divergence control).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/rng"
)

// hop is one directed link of the flow path system.
type hop struct {
	edge graph.EdgeID
	from graph.NodeID
}

// FlowRouter routes along a fixed maximum-flow path decomposition. Queues
// are anonymous counts, so the router moves *some* packet along every hop
// whose tail has one available; because the path system carries the full
// arrival rate of a feasible network, the pipeline drains everything the
// sources inject.
type FlowRouter struct {
	hops []hop
}

// NewFlowRouter decomposes a maximum flow of value f* (source links
// unbounded, Section II-B) into S-D paths and returns the router, whose
// path system can therefore carry any feasible arrival rate. It fails
// when sources cannot reach sinks at all (f* = 0).
func NewFlowRouter(spec *core.Spec, solver flow.Solver) (*FlowRouter, error) {
	ext := flow.Extend(spec.G, spec.In, spec.Out, func(graph.NodeID, int64) int64 {
		return flow.CapInf
	})
	res := solver.MaxFlow(ext.P)
	if res.Value == 0 {
		return nil, fmt.Errorf("baseline: flow router needs source-sink connectivity (f* = 0)")
	}
	paths := ext.SDPaths(res)
	fr := &FlowRouter{}
	for _, p := range paths {
		for i, ai := range p.Arcs {
			tag := ext.P.Arcs[ai].Tag
			if tag.Kind != flow.TagEdge {
				return nil, fmt.Errorf("baseline: unexpected non-edge arc inside an S-D path")
			}
			fr.hops = append(fr.hops, hop{
				edge: graph.EdgeID(tag.ID),
				from: graph.NodeID(p.Nodes[i]),
			})
		}
	}
	return fr, nil
}

// Name implements core.Router.
func (*FlowRouter) Name() string { return "flow-paths" }

// Plan implements core.Router.
func (f *FlowRouter) Plan(sn *core.Snapshot, buf []core.Send) []core.Send {
	// budget per node and per edge, recomputed each step
	n := sn.Spec.N()
	budget := make([]int64, n)
	copy(budget, sn.Q)
	used := make(map[graph.EdgeID]bool, len(f.hops))
	for _, h := range f.hops {
		if !sn.EdgeAlive(h.edge) || used[h.edge] || budget[h.from] <= 0 {
			continue
		}
		used[h.edge] = true
		budget[h.from]--
		buf = append(buf, core.Send{Edge: h.edge, From: h.from})
	}
	return buf
}

// Hops returns the number of directed hops in the path system (for
// inspection and tests).
func (f *FlowRouter) Hops() int { return len(f.hops) }

// FullGradient transmits one packet on every incident strictly-downhill
// link, spending each node's budget on the largest gradient first.
type FullGradient struct {
	cand []gradCand
}

type gradCand struct {
	edge graph.EdgeID
	peer graph.NodeID
	grad int64
}

// NewFullGradient returns the backpressure-style router.
func NewFullGradient() *FullGradient { return &FullGradient{} }

// Name implements core.Router.
func (*FullGradient) Name() string { return "full-gradient" }

// Plan implements core.Router.
func (fg *FullGradient) Plan(sn *core.Snapshot, buf []core.Send) []core.Send {
	g := sn.Spec.G
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		budget := sn.Q[u]
		if budget <= 0 {
			continue
		}
		fg.cand = fg.cand[:0]
		for _, in := range g.Incident(u) {
			if !sn.EdgeAlive(in.Edge) {
				continue
			}
			if d := sn.Q[u] - sn.Declared[in.Peer]; d > 0 {
				fg.cand = append(fg.cand, gradCand{edge: in.Edge, peer: in.Peer, grad: d})
			}
		}
		sort.Slice(fg.cand, func(i, j int) bool {
			if fg.cand[i].grad != fg.cand[j].grad {
				return fg.cand[i].grad > fg.cand[j].grad
			}
			return fg.cand[i].edge < fg.cand[j].edge
		})
		for _, c := range fg.cand {
			if budget == 0 {
				break
			}
			buf = append(buf, core.Send{Edge: c.edge, From: u})
			budget--
		}
	}
	return buf
}

// ShortestPath forwards toward the nearest destination: node u sends up
// to q(u) packets over links whose far end is strictly closer to a sink,
// nearest neighbours first. It never looks at queues, so congestion can
// pile up arbitrarily behind a popular corridor.
type ShortestPath struct {
	dist []int
}

// NewShortestPath precomputes hop distances to the nearest sink of spec.
func NewShortestPath(spec *core.Spec) *ShortestPath {
	return &ShortestPath{dist: spec.G.MultiBFS(spec.Sinks())}
}

// Name implements core.Router.
func (*ShortestPath) Name() string { return "shortest-path" }

// Plan implements core.Router.
func (sp *ShortestPath) Plan(sn *core.Snapshot, buf []core.Send) []core.Send {
	g := sn.Spec.G
	type cand struct {
		edge graph.EdgeID
		d    int
	}
	var cs []cand
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		budget := sn.Q[u]
		if budget <= 0 || sp.dist[u] <= 0 {
			continue // sinks (dist 0) and disconnected nodes keep packets
		}
		cs = cs[:0]
		for _, in := range g.Incident(u) {
			if !sn.EdgeAlive(in.Edge) {
				continue
			}
			if d := sp.dist[in.Peer]; d >= 0 && d < sp.dist[u] {
				cs = append(cs, cand{edge: in.Edge, d: d})
			}
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].d != cs[j].d {
				return cs[i].d < cs[j].d
			}
			return cs[i].edge < cs[j].edge
		})
		for _, c := range cs {
			if budget == 0 {
				break
			}
			buf = append(buf, core.Send{Edge: c.edge, From: u})
			budget--
		}
	}
	return buf
}

// RandomForward sends each node's packets over uniformly random distinct
// incident links (up to one per link), with no notion of direction. It is
// the weakest baseline: stable only at very light load.
type RandomForward struct {
	R *rng.Source

	perm []int
}

// NewRandomForward returns a random-walk router driven by r.
func NewRandomForward(r *rng.Source) *RandomForward { return &RandomForward{R: r} }

// Name implements core.Router.
func (*RandomForward) Name() string { return "random-forward" }

// Plan implements core.Router.
func (rf *RandomForward) Plan(sn *core.Snapshot, buf []core.Send) []core.Send {
	g := sn.Spec.G
	for v := 0; v < g.NumNodes(); v++ {
		u := graph.NodeID(v)
		budget := sn.Q[u]
		if budget <= 0 {
			continue
		}
		inc := g.Incident(u)
		if len(inc) == 0 {
			continue
		}
		if cap(rf.perm) < len(inc) {
			rf.perm = make([]int, len(inc))
		}
		perm := rf.perm[:len(inc)]
		for i := range perm {
			perm[i] = i
		}
		rf.R.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, i := range perm {
			if budget == 0 {
				break
			}
			if !sn.EdgeAlive(inc[i].Edge) {
				continue
			}
			buf = append(buf, core.Send{Edge: inc[i].Edge, From: u})
			budget--
		}
	}
	return buf
}

// Null never transmits; with sources active it demonstrates unbounded
// growth of P_t even on feasible networks (no protocol, no stability).
type Null struct{}

// Name implements core.Router.
func (Null) Name() string { return "null" }

// Plan implements core.Router.
func (Null) Plan(_ *core.Snapshot, buf []core.Send) []core.Send { return buf }
