package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Sleepy makes any router asynchronous: at each step every node is awake
// independently with probability P (decided by a pure hash of (Seed, t,
// node), so runs are reproducible and engine-independent), and sends
// planned by sleeping nodes are dropped. It models duty-cycled radios and
// probes how much synchrony LGG's stability actually needs — the
// asynchronous relaxation the paper leaves open alongside Conjecture 4.
type Sleepy struct {
	Inner core.Router
	P     float64
	Seed  uint64
}

// Name implements core.Router.
func (s *Sleepy) Name() string {
	return fmt.Sprintf("sleepy(%s, p=%g)", s.Inner.Name(), s.P)
}

// Awake reports whether node v participates at step t.
func (s *Sleepy) Awake(t int64, v graph.NodeID) bool {
	if s.P >= 1 {
		return true
	}
	if s.P <= 0 {
		return false
	}
	return rng.New(s.Seed).Split(uint64(t)).Split(uint64(v)).Float64() < s.P
}

// Plan implements core.Router.
func (s *Sleepy) Plan(sn *core.Snapshot, buf []core.Send) []core.Send {
	base := len(buf)
	buf = s.Inner.Plan(sn, buf)
	kept := buf[:base]
	for _, send := range buf[base:] {
		if s.Awake(sn.T, send.From) {
			kept = append(kept, send)
		}
	}
	return kept
}
