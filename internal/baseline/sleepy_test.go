package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestSleepyFullyAwakeIsTransparent(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	awake := &Sleepy{Inner: core.NewLGG(), P: 1, Seed: 1}
	plain := core.NewLGG()
	q := []int64{5, 0, 1, 2, 3}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	a := awake.Plan(sn, nil)
	b := plain.Plan(sn, nil)
	if len(a) != len(b) {
		t.Fatalf("p=1 filtered sends: %d vs %d", len(a), len(b))
	}
}

func TestSleepyFullyAsleepSendsNothing(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	asleep := &Sleepy{Inner: core.NewLGG(), P: 0, Seed: 1}
	q := []int64{5, 0, 1, 2, 3}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	if got := asleep.Plan(sn, nil); len(got) != 0 {
		t.Fatalf("p=0 planned %d sends", len(got))
	}
}

func TestSleepyAwakeRate(t *testing.T) {
	s := &Sleepy{Inner: core.NewLGG(), P: 0.3, Seed: 5}
	awake := 0
	const n = 20000
	for tm := int64(0); tm < n; tm++ {
		if s.Awake(tm, 3) {
			awake++
		}
	}
	if frac := float64(awake) / n; math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("awake rate %v, want ~0.3", frac)
	}
}

func TestSleepyDeterministic(t *testing.T) {
	a := &Sleepy{Inner: core.NewLGG(), P: 0.5, Seed: 9}
	b := &Sleepy{Inner: core.NewLGG(), P: 0.5, Seed: 9}
	for tm := int64(0); tm < 200; tm++ {
		for v := graph.NodeID(0); v < 5; v++ {
			if a.Awake(tm, v) != b.Awake(tm, v) {
				t.Fatal("Awake is not deterministic in (seed, t, v)")
			}
		}
	}
}

func TestSleepyOnlyDropsSleepers(t *testing.T) {
	s := thetaSpec(3, 2, 2, 3)
	sl := &Sleepy{Inner: core.NewLGG(), P: 0.5, Seed: 2}
	q := []int64{5, 0, 1, 2, 3}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q, T: 7}
	kept := sl.Plan(sn, nil)
	for _, send := range kept {
		if !sl.Awake(7, send.From) {
			t.Fatalf("sleeping node %d sent", send.From)
		}
	}
	// And every awake node's sends survive: compare with plain LGG.
	plain := core.NewLGG().Plan(sn, nil)
	want := 0
	for _, send := range plain {
		if sl.Awake(7, send.From) {
			want++
		}
	}
	if len(kept) != want {
		t.Fatalf("kept %d sends, want %d", len(kept), want)
	}
}

func TestSleepyEngineRun(t *testing.T) {
	s := thetaSpec(3, 2, 1, 3)
	e := core.NewEngine(s, &Sleepy{Inner: core.NewLGG(), P: 0.6, Seed: 4})
	tot := e.Run(400)
	if tot.Violations != 0 {
		t.Fatalf("violations = %d", tot.Violations)
	}
	if tot.Extracted == 0 {
		t.Fatal("nothing delivered at p=0.6")
	}
	if (&Sleepy{Inner: core.NewLGG(), P: 0.6}).Name() == "" {
		t.Fatal("name")
	}
}
