package viz

import (
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := Sparkline([]float64{0, 1, 2, 4, 8})
	if len([]rune(s)) != 5 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != ' ' {
		t.Fatalf("zero should render blank, got %q", runes[0])
	}
	if runes[4] != '█' {
		t.Fatalf("max should render full block, got %q", runes[4])
	}
	// monotone input → non-decreasing levels
	for i := 1; i < len(runes); i++ {
		if indexOf(runes[i]) < indexOf(runes[i-1]) {
			t.Fatalf("levels not monotone: %q", s)
		}
	}
}

func indexOf(r rune) int {
	for i, b := range blocks {
		if b == r {
			return i
		}
	}
	return -1
}

func TestSparklineAllZero(t *testing.T) {
	s := Sparkline([]float64{0, 0, 0})
	if s != "   " {
		t.Fatalf("all-zero = %q", s)
	}
}

func TestSparklineTinyPositiveVisible(t *testing.T) {
	s := []rune(Sparkline([]float64{0.001, 1000}))
	if s[0] == ' ' {
		t.Fatal("tiny positive value rendered invisible")
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	xs[57] = 9 // spike must survive max-downsampling
	out := Downsample(xs, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	found := false
	for _, x := range out {
		if x == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("downsampling lost the spike")
	}
	short := []float64{1, 2}
	if len(Downsample(short, 10)) != 2 {
		t.Fatal("short input should pass through")
	}
	if len(Downsample(short, 0)) != 2 {
		t.Fatal("width 0 should pass through")
	}
}

func TestQueueBars(t *testing.T) {
	out := QueueBars([]int64{0, 5, 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[2], "█") != 40 {
		t.Fatalf("max bar length = %d", strings.Count(lines[2], "█"))
	}
	if strings.Count(lines[1], "█") != 20 {
		t.Fatalf("half bar length = %d", strings.Count(lines[1], "█"))
	}
	if strings.Contains(lines[0], "█") {
		t.Fatal("zero queue has a bar")
	}
	// all-zero queues: no panic, no bars
	if strings.Contains(QueueBars([]int64{0, 0}), "█") {
		t.Fatal("all-zero produced bars")
	}
}

func TestGridHeat(t *testing.T) {
	q := []int64{0, 1, 2, 4}
	out := GridHeat(q, 2, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	if []rune(lines[1])[1] != '█' {
		t.Fatalf("max cell not full: %q", lines[1])
	}
}

func TestGridHeatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched grid accepted")
		}
	}()
	GridHeat([]int64{1, 2, 3}, 2, 2)
}
