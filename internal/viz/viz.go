// Package viz renders queue states and time series as compact terminal
// graphics (unicode block characters). It is presentation-only: no
// simulation logic, pure functions over numeric slices, so the outputs
// are golden-testable.
package viz

import (
	"fmt"
	"strings"
)

// blocks are the eight partial block characters plus space for zero.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// level maps x ∈ [0, max] to one of the 9 block levels.
func level(x, max float64) rune {
	if max <= 0 || x <= 0 {
		return blocks[0]
	}
	i := int(x / max * float64(len(blocks)-1))
	if i < 1 {
		i = 1 // visible dot for any positive value
	}
	if i >= len(blocks) {
		i = len(blocks) - 1
	}
	return blocks[i]
}

// Sparkline renders a series scaled to its own maximum.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	max := xs[0]
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		b.WriteRune(level(x, max))
	}
	return b.String()
}

// Downsample reduces xs to at most width points by taking bucket maxima
// (maxima, not means: stability plots care about peaks).
func Downsample(xs []float64, width int) []float64 {
	if width <= 0 || len(xs) <= width {
		return xs
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		m := xs[lo]
		for _, x := range xs[lo:hi] {
			if x > m {
				m = x
			}
		}
		out[i] = m
	}
	return out
}

// QueueBars renders one line per node: id, queue value and a bar scaled
// to the maximum queue.
func QueueBars(q []int64) string {
	var max int64
	for _, x := range q {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for v, x := range q {
		bar := ""
		if max > 0 {
			n := int(float64(x) / float64(max) * 40)
			if x > 0 && n == 0 {
				n = 1
			}
			bar = strings.Repeat("█", n)
		}
		fmt.Fprintf(&b, "%4d %6d %s\n", v, x, bar)
	}
	return b.String()
}

// GridHeat renders a rows×cols queue field as block-character rows
// (node (r,c) = q[r*cols+c]), scaled to the global maximum.
func GridHeat(q []int64, rows, cols int) string {
	if rows*cols != len(q) {
		panic(fmt.Sprintf("viz: grid %dx%d does not match %d values", rows, cols, len(q)))
	}
	var max int64
	for _, x := range q {
		if x > max {
			max = x
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.WriteRune(level(float64(q[r*cols+c]), float64(max)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
