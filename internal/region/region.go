// Package region estimates a router's empirical stability region: the
// critical load ρ* (as a fraction of f*) below which runs are stable and
// above which they diverge. Theorem 1 says ρ*(LGG) = 1 on every feasible
// network; queue-oblivious baselines fall short of 1 on asymmetric
// topologies, and the estimator quantifies by how much.
//
// The estimate is a bisection over rational loads k/Resolution, assuming
// monotonicity of stability in the load (which holds for every router in
// this repository in practice; the bisection brackets are returned so a
// non-monotone anomaly is visible as a wide interval).
package region

import (
	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Prober estimates the critical load of one (network, router) pair.
type Prober struct {
	Spec *core.Spec
	// Router builds a fresh router per run (engines run concurrently).
	Router func(seed uint64) core.Router
	// Seeds are the runs per probed load; a load counts as stable only if
	// every seed is stable.
	Seeds   []uint64
	Horizon int64
	// Resolution is the denominator of probed fractions (default 32).
	Resolution int64
	// MaxFraction bounds the search from above, in units of f* (default 2).
	MaxFraction int64

	fstar int64
	rate  int64
}

// init computes f* once.
func (p *Prober) init() {
	if p.fstar != 0 {
		return
	}
	a := p.Spec.Analyze(flow.NewPushRelabel())
	p.fstar = a.FStar
	p.rate = p.Spec.ArrivalRate()
	if p.Resolution <= 0 {
		p.Resolution = 32
	}
	if p.MaxFraction <= 0 {
		p.MaxFraction = 2
	}
}

// StableAt probes the load num/den (×f*): true iff every seed's run is
// judged stable.
func (p *Prober) StableAt(num, den int64) bool {
	p.init()
	rs := sim.RunSeeds(func(seed uint64) *core.Engine {
		e := core.NewEngine(p.Spec, p.Router(seed))
		e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{},
			Num: p.fstar * num, Den: p.rate * den}
		return e
	}, p.Seeds, sim.Options{Horizon: p.Horizon})
	for _, r := range rs {
		if r.Diagnosis.Verdict != sim.Stable {
			return false
		}
	}
	return true
}

// Critical bisects for the stability frontier and returns the bracketing
// interval [lo, hi] in units of f*: every probed load ≤ lo was stable and
// hi was the smallest probed unstable load. If even the maximum probed
// load is stable, hi equals MaxFraction and lo == hi.
func (p *Prober) Critical() (lo, hi float64) {
	p.init()
	q := p.Resolution
	loK, hiK := int64(0), p.MaxFraction*q
	if p.StableAt(hiK, q) {
		f := float64(hiK) / float64(q)
		return f, f
	}
	// invariant: loK stable (0 trivially), hiK unstable
	for loK+1 < hiK {
		mid := (loK + hiK) / 2
		if p.StableAt(mid, q) {
			loK = mid
		} else {
			hiK = mid
		}
	}
	return float64(loK) / float64(q), float64(hiK) / float64(q)
}
