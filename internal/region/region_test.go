package region

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

func thetaProber(router func(seed uint64) core.Router) *Prober {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 3).SetSink(1, 3)
	return &Prober{
		Spec:       spec,
		Router:     router,
		Seeds:      sim.Seeds(1, 3),
		Horizon:    1200,
		Resolution: 8,
	}
}

func TestLGGCriticalLoadIsOne(t *testing.T) {
	p := thetaProber(func(uint64) core.Router { return core.NewLGG() })
	lo, hi := p.Critical()
	// Theorem 1: stable through ρ = 1, diverging above. With resolution
	// 1/8 the bracket must straddle 1.
	if lo < 1.0-1e-9 {
		t.Fatalf("LGG critical bracket [%v, %v): lost stability below 1", lo, hi)
	}
	if hi > 1.0+0.25 {
		t.Fatalf("LGG critical bracket [%v, %v): stable past capacity?!", lo, hi)
	}
}

func TestNullRouterCriticalLoadIsZero(t *testing.T) {
	p := thetaProber(func(uint64) core.Router { return baseline.Null{} })
	lo, hi := p.Critical()
	if lo != 0 {
		t.Fatalf("null router stable at positive load %v", lo)
	}
	if hi > 0.2 {
		t.Fatalf("null router bracket hi = %v", hi)
	}
}

func TestStableAtDirect(t *testing.T) {
	p := thetaProber(func(uint64) core.Router { return core.NewLGG() })
	if !p.StableAt(1, 2) {
		t.Fatal("LGG unstable at half load")
	}
	if p.StableAt(2, 1) {
		t.Fatal("LGG stable at double load")
	}
}

func TestMaxFractionCeiling(t *testing.T) {
	// A router probed only up to 0×f*... use MaxFraction=1 on a stable
	// router: LGG is stable through 1, so the ceiling is reported.
	p := thetaProber(func(uint64) core.Router { return core.NewLGG() })
	p.MaxFraction = 1
	lo, hi := p.Critical()
	if lo != 1 || hi != 1 {
		t.Fatalf("ceiling bracket = [%v, %v], want [1, 1]", lo, hi)
	}
}

func TestSleepyCriticalLoadTracksDutyCycle(t *testing.T) {
	// Half-asleep LGG should lose roughly half its stability region.
	p := thetaProber(func(seed uint64) core.Router {
		return &baseline.Sleepy{Inner: core.NewLGG(), P: 0.5, Seed: seed}
	})
	lo, hi := p.Critical()
	if hi > 0.95 {
		t.Fatalf("sleepy(0.5) bracket [%v, %v]: should lose capacity", lo, hi)
	}
	if lo < 0.2 {
		t.Fatalf("sleepy(0.5) bracket [%v, %v]: should retain some capacity", lo, hi)
	}
}
