package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

func runOne(t *testing.T) (*core.Spec, *sim.Result) {
	t.Helper()
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	e := core.NewEngine(spec, core.NewLGG())
	return spec, sim.Run(e, sim.Options{Horizon: 200})
}

func TestSummaryRoundTrip(t *testing.T) {
	spec, res := runOne(t)
	s := Summarize(spec, "lgg", res)
	if s.Steps != 200 || s.Router != "lgg" || s.Verdict != "stable" {
		t.Fatalf("summary = %+v", s)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"peak_potential"`) {
		t.Fatalf("json missing fields: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, s)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken json accepted")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	_, res := runOne(t)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, &res.Series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,potential,queued,maxq" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 201 {
		t.Fatalf("lines = %d, want 201", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestSeriesCSVRespectsStride(t *testing.T) {
	spec := core.NewSpec(graph.Line(3)).SetSource(0, 1).SetSink(2, 1)
	e := core.NewEngine(spec, core.NewLGG())
	res := sim.Run(e, sim.Options{Horizon: 100, Stride: 10})
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, &res.Series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("lines = %d, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[2], "10,") {
		t.Fatalf("second sample = %q, want t=10", lines[2])
	}
}

func TestCollectAndWriteTerms(t *testing.T) {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
	e := core.NewEngine(spec, core.NewLGG())
	terms, err := CollectTerms(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 99 {
		t.Fatalf("terms = %d, want 99", len(terms))
	}
	var buf bytes.Buffer
	if err := WriteTermsCSV(&buf, terms); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t,delta_p") {
		t.Fatalf("header = %q", lines[0])
	}
}
