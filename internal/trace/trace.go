// Package trace serializes simulation results for external analysis:
// run summaries as JSON, time series and Lyapunov term streams as CSV.
// The formats are stable and covered by golden-ish tests so downstream
// notebooks can rely on them.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lyapunov"
	"repro/internal/sim"
)

// Summary is the JSON-serializable digest of a run.
type Summary struct {
	Network    string  `json:"network"`
	Router     string  `json:"router"`
	Steps      int64   `json:"steps"`
	Injected   int64   `json:"injected"`
	Delivered  int64   `json:"delivered"`
	Lost       int64   `json:"lost"`
	Stored     int64   `json:"stored"`
	PeakQueued int64   `json:"peak_queued"`
	PeakMaxQ   int64   `json:"peak_max_queue"`
	PeakP      int64   `json:"peak_potential"`
	FinalP     int64   `json:"final_potential"`
	Violations int64   `json:"violations"`
	Collisions int64   `json:"collisions"`
	Verdict    string  `json:"verdict"`
	Slope      float64 `json:"slope"`
	RelGrowth  float64 `json:"rel_growth"`
	R2         float64 `json:"r2"`
}

// Summarize builds a Summary from a run on the given spec/router.
func Summarize(spec *core.Spec, routerName string, r *sim.Result) Summary {
	return Summary{
		Network:    spec.String(),
		Router:     routerName,
		Steps:      r.Totals.Steps,
		Injected:   r.Totals.Injected,
		Delivered:  r.Totals.Extracted,
		Lost:       r.Totals.Lost,
		Stored:     r.Totals.FinalQueued,
		PeakQueued: r.Totals.PeakQueued,
		PeakMaxQ:   r.Totals.PeakMaxQ,
		PeakP:      r.Totals.PeakPotential,
		FinalP:     r.Totals.FinalPotential,
		Violations: r.Totals.Violations,
		Collisions: r.Totals.Collisions,
		Verdict:    r.Diagnosis.Verdict.String(),
		Slope:      r.Diagnosis.Slope,
		RelGrowth:  r.Diagnosis.RelGrowth,
		R2:         r.Diagnosis.R2,
	}
}

// WriteJSON writes the summary as indented JSON.
func WriteJSON(w io.Writer, s Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a summary written by WriteJSON.
func ReadJSON(r io.Reader) (Summary, error) {
	var s Summary
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}

// WriteSeriesCSV writes the per-step series of a run:
// t,potential,queued,maxq.
func WriteSeriesCSV(w io.Writer, s *sim.Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,potential,queued,maxq"); err != nil {
		return err
	}
	for i := range s.Potential {
		fmt.Fprintf(bw, "%d,%.0f,%.0f,%.0f\n",
			int64(i)*s.Stride, s.Potential[i], s.Queued[i], s.MaxQ[i])
	}
	return bw.Flush()
}

// WriteTermsCSV streams Lyapunov decompositions:
// t,deltaP,second_order,delta,injection,gradient,loss,extraction.
func WriteTermsCSV(w io.Writer, terms []lyapunov.Terms) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw,
		"t,delta_p,second_order,delta,injection,gradient,loss,extraction"); err != nil {
		return err
	}
	for _, t := range terms {
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			t.T, t.DeltaP, t.SecondOrder, t.Delta,
			t.InjectionTerm, t.GradientTerm, t.LossTerm, t.ExtractionTerm)
	}
	return bw.Flush()
}

// CollectTerms runs an engine under the Lyapunov recorder for the given
// number of steps and returns all decompositions (one per transition),
// failing on the first identity violation.
func CollectTerms(e *core.Engine, steps int64) ([]lyapunov.Terms, error) {
	rec := lyapunov.NewRecorder(e)
	var out []lyapunov.Terms
	for i := int64(0); i < steps; i++ {
		_, terms := rec.Step()
		if terms == nil {
			continue
		}
		if err := terms.Check(); err != nil {
			return out, err
		}
		out = append(out, *terms)
	}
	return out, nil
}
