package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a small text codec and a Graphviz DOT exporter.
//
// The text format is line oriented:
//
//	# comment
//	nodes <n>
//	edge <u> <v> [count]
//
// It is used by cmd/lgggen and cmd/lggflow to pass graphs between tools.

// Encode writes g in the text format.
func Encode(w io.Writer, g *Multigraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format produced by Encode. Unknown directives,
// bad node ids and malformed lines are reported with their line number.
func Decode(r io.Reader) (*Multigraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Multigraph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "nodes":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes directive", line)
			}
			var n int
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: nodes wants 1 argument", line)
			}
			// 4M-node cap: hostile inputs must not trigger unbounded
			// allocation.
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 || n > 1<<22 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			g = New(n)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before nodes", line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge wants 2 or 3 arguments", line)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1], "%d", &u); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node %q", line, fields[1])
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node %q", line, fields[2])
			}
			count := 1
			if len(fields) == 4 {
				if _, err := fmt.Sscanf(fields[3], "%d", &count); err != nil || count < 1 || count > 1<<20 {
					return nil, fmt.Errorf("graph: line %d: bad count %q", line, fields[3])
				}
			}
			if u < 0 || u >= g.NumNodes() || v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: edge %d-%d out of range", line, u, v)
			}
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-loop at %d", line, u)
			}
			g.AddEdges(NodeID(u), NodeID(v), count)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing nodes directive")
	}
	return g, nil
}

// DOT writes g in Graphviz format. The optional label function, if
// non-nil, supplies a per-node label (for marking sources/sinks).
func DOT(w io.Writer, g *Multigraph, label func(NodeID) string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "graph G {"); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		l := ""
		if label != nil {
			l = label(NodeID(v))
		}
		if l != "" {
			fmt.Fprintf(bw, "  %d [label=%q];\n", v, l)
		} else {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
