package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := RandomMultigraph(7, 15, rng.New(4))
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d",
			h.NumNodes(), h.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if h.Edges()[i] != e {
			t.Fatalf("edge %d differs: %v vs %v", i, h.Edges()[i], e)
		}
	}
}

func TestDecodeCountsAndComments(t *testing.T) {
	in := `# a comment
nodes 3

edge 0 1 2
edge 1 2
`
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Multiplicity(0, 1) != 2 {
		t.Fatal("count argument ignored")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                        // no nodes directive
		"edge 0 1",                // edge before nodes
		"nodes 2\nnodes 3",        // duplicate nodes
		"nodes -1",                // bad count
		"nodes x",                 // unparsable
		"nodes 2\nedge 0 5",       // out of range
		"nodes 2\nedge 0 0",       // self loop
		"nodes 2\nedge 0 1 0",     // bad multiplicity
		"nodes 2\nbogus 1 2",      // unknown directive
		"nodes 2\nedge 0",         // short edge
		"nodes 2\nedge 0 1 2 3 4", // long edge
		"nodes",                   // short nodes
	}
	for _, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", in)
		}
	}
}

func TestDOT(t *testing.T) {
	g := Line(3)
	var buf bytes.Buffer
	err := DOT(&buf, g, func(v NodeID) string {
		if v == 0 {
			return "src"
		}
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", `0 [label="src"]`, "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTNilLabel(t *testing.T) {
	var buf bytes.Buffer
	if err := DOT(&buf, Cycle(3), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 -- 0;") {
		t.Fatalf("DOT output:\n%s", buf.String())
	}
}
