package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the text codec: arbitrary input must either fail
// cleanly or produce a graph that validates and round-trips.
func FuzzDecode(f *testing.F) {
	f.Add("nodes 3\nedge 0 1\nedge 1 2 2\n")
	f.Add("# comment\nnodes 1\n")
	f.Add("nodes 2\nedge 0 0\n")
	f.Add("edge 1 2\n")
	f.Add("nodes -5\n")
	f.Add("nodes 2\nedge 0 1 999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		g, err := Decode(strings.NewReader(input))
		if err != nil {
			return // clean rejection
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		h, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed the graph: %v vs %v", h, g)
		}
	})
}
