package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustValidate(t *testing.T, g *Multigraph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewAndAddEdge(t *testing.T) {
	g := New(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	id := g.AddEdge(0, 1)
	if id != 0 {
		t.Fatalf("first edge id = %d", id)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	e := g.EdgeByID(id)
	if e.U != 0 || e.V != 1 {
		t.Fatalf("edge = %+v", e)
	}
	mustValidate(t, g)
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdges(0, 1, 3)
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.Multiplicity(0, 1) != 3 || g.Multiplicity(1, 0) != 3 {
		t.Fatal("multiplicity wrong")
	}
	if g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Fatal("parallel edges must count toward degree")
	}
	if got := g.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors = %v", got)
	}
	mustValidate(t, g)
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestAddNodes(t *testing.T) {
	g := New(2)
	first := g.AddNodes(3)
	if first != 2 || g.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
	g.AddEdge(0, 4)
	mustValidate(t, g)
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 || g.MaxDegree() != 4 {
		t.Fatalf("star degrees: hub=%d Δ=%d", g.Degree(0), g.MaxDegree())
	}
	if New(3).MaxDegree() != 0 {
		t.Fatal("edgeless Δ != 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Line(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("Clone shares edge storage")
	}
	mustValidate(t, g)
	mustValidate(t, c)
}

func TestBFS(t *testing.T) {
	g := Line(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	// Disconnected
	g2 := New(3)
	g2.AddEdge(0, 1)
	d2 := g2.BFS(0)
	if d2[2] != -1 {
		t.Fatalf("unreachable dist = %d", d2[2])
	}
}

func TestMultiBFS(t *testing.T) {
	g := Line(5)
	d := g.MultiBFS([]NodeID{0, 4})
	want := []int{0, 1, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("MultiBFS[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("components = %d", count)
	}
	if labels[0] != labels[1] || labels[3] != labels[4] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !Line(4).Connected() {
		t.Fatal("line reported disconnected")
	}
}

func TestDiameter(t *testing.T) {
	if d := Line(5).Diameter(); d != 4 {
		t.Fatalf("line diameter = %d", d)
	}
	if d := Complete(6).Diameter(); d != 1 {
		t.Fatalf("K6 diameter = %d", d)
	}
	g := New(3)
	g.AddEdge(0, 1)
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d", d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(5)
	keep := []bool{true, true, true, false, false}
	sub, remap := g.InducedSubgraph(keep)
	if sub.NumNodes() != 3 {
		t.Fatalf("sub n = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 2 { // edges 0-1, 1-2 survive
		t.Fatalf("sub m = %d", sub.NumEdges())
	}
	if remap[3] != -1 || remap[0] != 0 {
		t.Fatalf("remap = %v", remap)
	}
	mustValidate(t, sub)
}

func TestGenerators(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name string
		g    *Multigraph
		n, m int
	}{
		{"line", Line(6), 6, 5},
		{"cycle", Cycle(6), 6, 6},
		{"complete", Complete(5), 5, 10},
		{"star", Star(7), 7, 6},
		{"grid", Grid(3, 4), 12, 17},
		{"torus", Torus(3, 3), 9, 18},
		{"theta", ThetaGraph(3, 2), 2 + 3, 6},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.NumNodes(), c.g.NumEdges(), c.n, c.m)
		}
		mustValidate(t, c.g)
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
	_ = r
}

func TestGNP(t *testing.T) {
	r := rng.New(2)
	g := GNP(20, 0.5, r)
	mustValidate(t, g)
	if g.NumEdges() < 50 || g.NumEdges() > 140 {
		t.Fatalf("G(20,0.5) edges = %d, improbable", g.NumEdges())
	}
	if GNP(10, 0, rng.New(1)).NumEdges() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if GNP(10, 1, rng.New(1)).NumEdges() != 45 {
		t.Fatal("G(10,1) is not complete")
	}
}

func TestConnectedGNP(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := ConnectedGNP(15, 0.05, rng.New(seed))
		mustValidate(t, g)
		if !g.Connected() {
			t.Fatalf("seed %d: not connected", seed)
		}
	}
}

func TestRandomMultigraph(t *testing.T) {
	g := RandomMultigraph(8, 20, rng.New(3))
	mustValidate(t, g)
	if g.NumNodes() != 8 || g.NumEdges() != 20 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	mustValidate(t, g)
	if g.NumNodes() != 10 { // 4 + 2 interior + 4
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
	// Bridge interior nodes have degree 2.
	if g.Degree(4) != 2 || g.Degree(5) != 2 {
		t.Fatalf("bridge degrees: %d %d", g.Degree(4), g.Degree(5))
	}
}

func TestLayered(t *testing.T) {
	g := Layered(4, 3, 0.4, rng.New(5))
	mustValidate(t, g)
	if g.NumNodes() != 12 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// every node in a non-final layer has at least one forward edge
	for l := 0; l < 3; l++ {
		for w := 0; w < 3; w++ {
			if g.Degree(NodeID(l*3+w)) == 0 {
				t.Fatalf("node (%d,%d) isolated", l, w)
			}
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	g, pos := RandomGeometric(30, 0.4, rng.New(7))
	mustValidate(t, g)
	if len(pos) != 30 {
		t.Fatalf("positions = %d", len(pos))
	}
	g2, _ := RandomGeometric(30, 1.5, rng.New(7))
	if g2.NumEdges() != 30*29/2 {
		t.Fatal("radius > sqrt2 should give a complete graph")
	}
}

func TestThicken(t *testing.T) {
	g := Line(4)
	h := Thicken(g, 5, rng.New(9))
	mustValidate(t, h)
	if h.NumEdges() != g.NumEdges()+5 {
		t.Fatalf("thickened m = %d", h.NumEdges())
	}
	if g.NumEdges() != 3 {
		t.Fatal("Thicken mutated its input")
	}
}

func TestThetaGraphFlowStructure(t *testing.T) {
	g := ThetaGraph(4, 3)
	mustValidate(t, g)
	if g.Degree(0) != 4 || g.Degree(1) != 4 {
		t.Fatalf("terminal degrees %d %d", g.Degree(0), g.Degree(1))
	}
}

// Property: every generated random multigraph validates and node degrees
// sum to 2m.
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := n - 1 + int(extraRaw%30)
		g := RandomMultigraph(n, m, rng.New(seed))
		if g.Validate() != nil {
			return false
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: InducedSubgraph never keeps an edge with a dropped endpoint.
func TestQuickInducedSubgraph(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mask uint32) bool {
		n := int(nRaw%12) + 2
		g := RandomMultigraph(n, n+4, rng.New(seed))
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = mask&(1<<uint(i)) != 0
		}
		sub, remap := g.InducedSubgraph(keep)
		if sub.Validate() != nil {
			return false
		}
		want := 0
		for _, e := range g.Edges() {
			if keep[e.U] && keep[e.V] {
				want++
			}
		}
		kept := 0
		for _, k := range keep {
			if k {
				kept++
			}
		}
		_ = remap
		return sub.NumEdges() == want && sub.NumNodes() == kept
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
