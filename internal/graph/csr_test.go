package graph

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestCSRIncidenceOrder pins the ordering contract of the CSR layout:
// each node's incidence list is in ascending edge-id order — exactly the
// per-node append order the old slice-of-slices representation produced —
// including interleaved insertions and parallel edges.
func TestCSRIncidenceOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)     // e0
	g.AddEdge(0, 1)     // e1
	g.AddEdge(2, 0)     // e2 — node 0 is the V endpoint here
	g.AddEdges(0, 2, 2) // e3, e4 parallel
	g.AddEdge(1, 2)     // e5

	want := map[NodeID][]Incidence{
		0: {{0, 3}, {1, 1}, {2, 2}, {3, 2}, {4, 2}},
		1: {{1, 0}, {5, 2}},
		2: {{2, 0}, {3, 0}, {4, 0}, {5, 1}},
		3: {{0, 0}},
	}
	for v, w := range want {
		got := g.Incident(v)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("Incident(%d) = %v, want %v", v, got, w)
		}
	}

	off, flat := g.IncidenceCSR()
	if len(off) != 5 || int(off[4]) != len(flat) || len(flat) != 2*g.NumEdges() {
		t.Fatalf("CSR shape: off=%v len(flat)=%d", off, len(flat))
	}
	for v := NodeID(0); v < 4; v++ {
		sub := flat[off[v]:off[v+1]]
		if fmt.Sprint(sub) != fmt.Sprint(want[v]) {
			t.Errorf("CSR slice for %d = %v, want %v", v, sub, want[v])
		}
	}
}

// TestCSRInvalidationOnMutation checks that AddEdge and AddNodes
// invalidate the cached snapshot and later reads see the new topology,
// while slices handed out earlier keep describing the old snapshot.
func TestCSRInvalidationOnMutation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	before := g.Incident(0)
	if len(before) != 1 {
		t.Fatalf("pre-mutation Incident(0) = %v", before)
	}

	g.AddEdge(0, 2)
	if got := g.Incident(0); len(got) != 2 || got[1] != (Incidence{Edge: 1, Peer: 2}) {
		t.Fatalf("post-AddEdge Incident(0) = %v", got)
	}
	if len(before) != 1 {
		t.Fatalf("old snapshot slice mutated in place: %v", before)
	}

	v := g.AddNodes(1)
	if v != 3 {
		t.Fatalf("AddNodes returned %d, want 3", v)
	}
	if got := g.Incident(3); len(got) != 0 {
		t.Fatalf("fresh node has incidences: %v", got)
	}
	g.AddEdge(3, 0)
	if got := g.Incident(3); len(got) != 1 || got[0].Peer != 0 {
		t.Fatalf("Incident(3) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIndependence checks a clone shares nothing mutable with the
// original: edges added to one never appear in the other.
func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.Incident(0) // force the CSR build before cloning

	c := g.Clone()
	c.AddEdge(1, 2)
	g.AddEdge(0, 2)

	if g.NumEdges() != 2 || c.NumEdges() != 2 {
		t.Fatalf("edge counts: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
	if got := g.Incident(2); len(got) != 1 || got[0].Peer != 0 {
		t.Fatalf("g.Incident(2) = %v", got)
	}
	if got := c.Incident(2); len(got) != 1 || got[0].Peer != 1 {
		t.Fatalf("c.Incident(2) = %v", got)
	}
}

// TestCSRConcurrentReads hammers a freshly-mutated graph from many
// goroutines so the lazy rebuild races with itself; run under -race this
// verifies the atomic-snapshot publication. All readers must agree on the
// resulting topology.
func TestCSRConcurrentReads(t *testing.T) {
	r := rng.New(7)
	g := RandomMultigraph(50, 200, r)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := 0
			for v := NodeID(0); int(v) < g.NumNodes(); v++ {
				total += len(g.Incident(v))
			}
			if total != 2*g.NumEdges() {
				errs <- fmt.Errorf("incidence total %d, want %d", total, 2*g.NumEdges())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
