// Package graph implements the multigraph substrate the paper's
// S-D-networks are modelled on (Section II: "Let G = (V, E) be a multigraph
// modeling the considered network").
//
// Graphs are undirected multigraphs: parallel edges are allowed and
// meaningful (each parallel edge can carry one packet per time step), and
// self-loops are rejected (a self-loop can never satisfy the strict
// gradient condition q(u) > q(u) and would only distort degree bounds).
//
// The representation is a flat edge list plus per-node incidence lists,
// which is the access pattern the LGG protocol needs: a node inspects the
// queues of the endpoints of its incident edges.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are the integers [0, NumNodes).
type NodeID int32

// EdgeID identifies an edge; edges are the integers [0, NumEdges) in
// insertion order.
type EdgeID int32

// Edge is an undirected edge between U and V. For parallel edges, several
// Edge values share the same endpoints but have distinct EdgeIDs.
type Edge struct {
	U, V NodeID
}

// Other returns the endpoint of e opposite to x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// Incidence records one incident edge of a node: the edge id and the
// neighbour at its far end.
type Incidence struct {
	Edge EdgeID
	Peer NodeID
}

// Multigraph is an undirected multigraph. The zero value is an empty graph
// with no nodes; use New or AddNodes to size it.
type Multigraph struct {
	edges []Edge
	inc   [][]Incidence
}

// New returns a multigraph with n isolated nodes.
func New(n int) *Multigraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Multigraph{inc: make([][]Incidence, n)}
}

// NumNodes returns the number of nodes.
func (g *Multigraph) NumNodes() int { return len(g.inc) }

// NumEdges returns the number of edges (counting parallels separately).
func (g *Multigraph) NumEdges() int { return len(g.edges) }

// AddNodes appends k isolated nodes and returns the id of the first one.
func (g *Multigraph) AddNodes(k int) NodeID {
	if k < 0 {
		panic("graph: negative node count")
	}
	first := NodeID(len(g.inc))
	g.inc = append(g.inc, make([][]Incidence, k)...)
	return first
}

// AddEdge inserts an undirected edge {u, v} and returns its id. Parallel
// edges are allowed; self-loops are not.
func (g *Multigraph) AddEdge(u, v NodeID) EdgeID {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.inc[u] = append(g.inc[u], Incidence{Edge: id, Peer: v})
	g.inc[v] = append(g.inc[v], Incidence{Edge: id, Peer: u})
	return id
}

// AddEdges inserts c parallel edges {u, v} and returns the first id.
func (g *Multigraph) AddEdges(u, v NodeID, c int) EdgeID {
	if c <= 0 {
		panic("graph: non-positive parallel edge count")
	}
	first := g.AddEdge(u, v)
	for i := 1; i < c; i++ {
		g.AddEdge(u, v)
	}
	return first
}

func (g *Multigraph) check(v NodeID) {
	if v < 0 || int(v) >= len(g.inc) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.inc)))
	}
}

// EdgeByID returns the edge with the given id.
func (g *Multigraph) EdgeByID(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns the edge list. The returned slice is shared with the
// graph; callers must not modify it.
func (g *Multigraph) Edges() []Edge { return g.edges }

// Incident returns the incidence list of v. The returned slice is shared
// with the graph; callers must not modify it.
func (g *Multigraph) Incident(v NodeID) []Incidence {
	g.check(v)
	return g.inc[v]
}

// Degree returns the degree of v, counting parallel edges with
// multiplicity (this is the |Γ(v)| of the paper's Δ bound: each incident
// link can deliver one packet per step).
func (g *Multigraph) Degree(v NodeID) int {
	g.check(v)
	return len(g.inc[v])
}

// MaxDegree returns Δ = max_v deg(v), or 0 for an empty graph.
func (g *Multigraph) MaxDegree() int {
	max := 0
	for _, l := range g.inc {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// Multiplicity returns the number of parallel edges between u and v.
func (g *Multigraph) Multiplicity(u, v NodeID) int {
	g.check(u)
	g.check(v)
	m := 0
	for _, in := range g.inc[u] {
		if in.Peer == v {
			m++
		}
	}
	return m
}

// Neighbors returns the distinct neighbours of v in ascending order.
func (g *Multigraph) Neighbors(v NodeID) []NodeID {
	g.check(v)
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, in := range g.inc[v] {
		if !seen[in.Peer] {
			seen[in.Peer] = true
			out = append(out, in.Peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Multigraph) Clone() *Multigraph {
	c := &Multigraph{
		edges: append([]Edge(nil), g.edges...),
		inc:   make([][]Incidence, len(g.inc)),
	}
	for i, l := range g.inc {
		c.inc[i] = append([]Incidence(nil), l...)
	}
	return c
}

// Validate checks internal consistency (incidence lists agree with the
// edge list). It returns nil if the graph is well formed; it exists for
// tests and for graphs built by external decoders.
func (g *Multigraph) Validate() error {
	counts := make([]int, len(g.inc))
	for id, e := range g.edges {
		if e.U < 0 || int(e.U) >= len(g.inc) || e.V < 0 || int(e.V) >= len(g.inc) {
			return fmt.Errorf("graph: edge %d endpoints %v out of range", id, e)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", id, e.U)
		}
		counts[e.U]++
		counts[e.V]++
	}
	for v, l := range g.inc {
		if len(l) != counts[v] {
			return fmt.Errorf("graph: node %d incidence length %d, want %d", v, len(l), counts[v])
		}
		for _, in := range l {
			if int(in.Edge) >= len(g.edges) {
				return fmt.Errorf("graph: node %d references unknown edge %d", v, in.Edge)
			}
			e := g.edges[in.Edge]
			if (e.U != NodeID(v) || e.V != in.Peer) && (e.V != NodeID(v) || e.U != in.Peer) {
				return fmt.Errorf("graph: node %d incidence %+v disagrees with edge %v", v, in, e)
			}
		}
	}
	return nil
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Multigraph) BFS(src NodeID) []int {
	return g.MultiBFS([]NodeID{src})
}

// MultiBFS returns, for every node, the hop distance to the nearest of the
// given sources; unreachable nodes get -1. It is used by the
// shortest-path-to-sink baseline router.
func (g *Multigraph) MultiBFS(srcs []NodeID) []int {
	dist := make([]int, len(g.inc))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, len(srcs))
	for _, s := range srcs {
		g.check(s)
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, in := range g.inc[v] {
			if dist[in.Peer] == -1 {
				dist[in.Peer] = dist[v] + 1
				queue = append(queue, in.Peer)
			}
		}
	}
	return dist
}

// Components returns a component label per node (labels are 0,1,… in
// first-seen order) and the number of components.
func (g *Multigraph) Components() (label []int, count int) {
	label = make([]int, len(g.inc))
	for i := range label {
		label[i] = -1
	}
	for v := range g.inc {
		if label[v] != -1 {
			continue
		}
		queue := []NodeID{NodeID(v)}
		label[v] = count
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, in := range g.inc[x] {
				if label[in.Peer] == -1 {
					label[in.Peer] = count
					queue = append(queue, in.Peer)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether the graph is connected (an empty graph counts
// as connected).
func (g *Multigraph) Connected() bool {
	_, c := g.Components()
	return c <= 1
}

// Diameter returns the largest finite BFS distance between any node pair,
// or -1 if the graph is disconnected or empty. O(n·(n+m)); intended for
// the small graphs used in experiments.
func (g *Multigraph) Diameter() int {
	n := len(g.inc)
	if n == 0 {
		return -1
	}
	d := 0
	for v := 0; v < n; v++ {
		dist := g.BFS(NodeID(v))
		for _, x := range dist {
			if x == -1 {
				return -1
			}
			if x > d {
				d = x
			}
		}
	}
	return d
}

// InducedSubgraph returns the subgraph induced by keep (nodes where
// keep[v] is true) together with the mapping old→new node id (-1 for
// dropped nodes). Edges with both endpoints kept are preserved in order.
func (g *Multigraph) InducedSubgraph(keep []bool) (*Multigraph, []NodeID) {
	if len(keep) != len(g.inc) {
		panic("graph: keep mask length mismatch")
	}
	remap := make([]NodeID, len(g.inc))
	n := 0
	for v, k := range keep {
		if k {
			remap[v] = NodeID(n)
			n++
		} else {
			remap[v] = -1
		}
	}
	sub := New(n)
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			sub.AddEdge(remap[e.U], remap[e.V])
		}
	}
	return sub, remap
}

// String returns a compact description such as "multigraph(n=5, m=7, Δ=3)".
func (g *Multigraph) String() string {
	return fmt.Sprintf("multigraph(n=%d, m=%d, Δ=%d)", g.NumNodes(), g.NumEdges(), g.MaxDegree())
}
