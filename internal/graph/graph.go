// Package graph implements the multigraph substrate the paper's
// S-D-networks are modelled on (Section II: "Let G = (V, E) be a multigraph
// modeling the considered network").
//
// Graphs are undirected multigraphs: parallel edges are allowed and
// meaningful (each parallel edge can carry one packet per time step), and
// self-loops are rejected (a self-loop can never satisfy the strict
// gradient condition q(u) > q(u) and would only distort degree bounds).
//
// The representation is a flat edge list plus a CSR (compressed sparse
// row) incidence layout: one flat []Incidence array ordered by node, with
// per-node offsets into it. This is the access pattern the LGG protocol
// needs — a node inspects the queues of the endpoints of its incident
// edges — and keeping every incidence list in one contiguous array makes
// the planning hot loop cache-friendly and allocation-free. The CSR
// arrays are rebuilt lazily after mutation, so graph construction stays
// cheap and the steady state (build once, step forever) pays the rebuild
// exactly once.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node; nodes are the integers [0, NumNodes).
type NodeID int32

// EdgeID identifies an edge; edges are the integers [0, NumEdges) in
// insertion order.
type EdgeID int32

// Edge is an undirected edge between U and V. For parallel edges, several
// Edge values share the same endpoints but have distinct EdgeIDs.
type Edge struct {
	U, V NodeID
}

// Other returns the endpoint of e opposite to x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// Incidence records one incident edge of a node: the edge id and the
// neighbour at its far end.
type Incidence struct {
	Edge EdgeID
	Peer NodeID
}

// Multigraph is an undirected multigraph. The zero value is an empty graph
// with no nodes; use New or AddNodes to size it.
//
// Incidence is stored in CSR form: one flat []Incidence holds every node's
// incidence list back to back (node v's list is flat[off[v]:off[v+1]]),
// ordered by ascending edge id within each node — which equals AddEdge
// insertion order, the ordering the earlier per-node slices had. The CSR
// arrays are derived lazily from the edge list after mutation and then
// published as an immutable snapshot through an atomic pointer, so a
// fully-built graph can be read concurrently (sweeps and the distributed
// simulator share one graph across goroutines). Mutating methods are not
// safe to call concurrently with anything else.
type Multigraph struct {
	edges []Edge
	n     int
	// inc is the CSR incidence snapshot; nil means it needs a rebuild.
	inc    atomic.Pointer[incCSR]
	buildM sync.Mutex
}

// incCSR is one immutable CSR incidence snapshot.
type incCSR struct {
	off  []int32
	flat []Incidence
}

// New returns a multigraph with n isolated nodes.
func New(n int) *Multigraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Multigraph{n: n}
}

// NumNodes returns the number of nodes.
func (g *Multigraph) NumNodes() int { return g.n }

// NumEdges returns the number of edges (counting parallels separately).
func (g *Multigraph) NumEdges() int { return len(g.edges) }

// AddNodes appends k isolated nodes and returns the id of the first one.
func (g *Multigraph) AddNodes(k int) NodeID {
	if k < 0 {
		panic("graph: negative node count")
	}
	first := NodeID(g.n)
	g.n += k
	g.inc.Store(nil)
	return first
}

// AddEdge inserts an undirected edge {u, v} and returns its id. Parallel
// edges are allowed; self-loops are not.
func (g *Multigraph) AddEdge(u, v NodeID) EdgeID {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v})
	g.inc.Store(nil)
	return id
}

// AddEdges inserts c parallel edges {u, v} and returns the first id.
func (g *Multigraph) AddEdges(u, v NodeID, c int) EdgeID {
	if c <= 0 {
		panic("graph: non-positive parallel edge count")
	}
	first := g.AddEdge(u, v)
	for i := 1; i < c; i++ {
		g.AddEdge(u, v)
	}
	return first
}

func (g *Multigraph) check(v NodeID) {
	if v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// ensureCSR returns the current CSR incidence snapshot, building it from
// the edge list if a mutation invalidated it. The fast path is one atomic
// pointer load, safe to keep inside hot loops and to call from many
// readers at once.
func (g *Multigraph) ensureCSR() *incCSR {
	if c := g.inc.Load(); c != nil {
		return c
	}
	g.buildM.Lock()
	defer g.buildM.Unlock()
	if c := g.inc.Load(); c != nil { // lost the build race
		return c
	}
	// Counting sort over the edge list. Iterating edges in id order
	// reproduces, per node, the exact ordering the old per-node
	// append-on-AddEdge lists had: ascending edge id.
	c := &incCSR{
		off:  make([]int32, g.n+1),
		flat: make([]Incidence, 2*len(g.edges)),
	}
	for _, e := range g.edges {
		c.off[e.U+1]++
		c.off[e.V+1]++
	}
	for v := 0; v < g.n; v++ {
		c.off[v+1] += c.off[v]
	}
	next := make([]int32, g.n)
	copy(next, c.off[:g.n])
	for id, e := range g.edges {
		c.flat[next[e.U]] = Incidence{Edge: EdgeID(id), Peer: e.V}
		next[e.U]++
		c.flat[next[e.V]] = Incidence{Edge: EdgeID(id), Peer: e.U}
		next[e.V]++
	}
	g.inc.Store(c)
	return c
}

// EdgeByID returns the edge with the given id.
func (g *Multigraph) EdgeByID(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns the edge list. The returned slice is shared with the
// graph; callers must not modify it.
func (g *Multigraph) Edges() []Edge { return g.edges }

// Incident returns the incidence list of v, a sub-slice of the shared CSR
// array in ascending edge-id order; callers must not modify it. The slice
// reflects the graph as of this call; later mutations produce new CSR
// snapshots and are not visible through it.
func (g *Multigraph) Incident(v NodeID) []Incidence {
	g.check(v)
	c := g.ensureCSR()
	return c.flat[c.off[v]:c.off[v+1]]
}

// IncidenceCSR exposes the raw CSR arrays (per-node offsets and the flat
// incidence list, with node v's incidences at flat[off[v]:off[v+1]]) for
// hot loops that want to iterate many nodes without per-Incident bounds
// checks. Both slices are shared immutable snapshots; callers must not
// modify them.
func (g *Multigraph) IncidenceCSR() (off []int32, flat []Incidence) {
	c := g.ensureCSR()
	return c.off, c.flat
}

// Degree returns the degree of v, counting parallel edges with
// multiplicity (this is the |Γ(v)| of the paper's Δ bound: each incident
// link can deliver one packet per step).
func (g *Multigraph) Degree(v NodeID) int {
	g.check(v)
	c := g.ensureCSR()
	return int(c.off[v+1] - c.off[v])
}

// MaxDegree returns Δ = max_v deg(v), or 0 for an empty graph.
func (g *Multigraph) MaxDegree() int {
	c := g.ensureCSR()
	max := int32(0)
	for v := 0; v < g.n; v++ {
		if d := c.off[v+1] - c.off[v]; d > max {
			max = d
		}
	}
	return int(max)
}

// Multiplicity returns the number of parallel edges between u and v.
func (g *Multigraph) Multiplicity(u, v NodeID) int {
	g.check(v)
	m := 0
	for _, in := range g.Incident(u) {
		if in.Peer == v {
			m++
		}
	}
	return m
}

// Neighbors returns the distinct neighbours of v in ascending order.
func (g *Multigraph) Neighbors(v NodeID) []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, in := range g.Incident(v) {
		if !seen[in.Peer] {
			seen[in.Peer] = true
			out = append(out, in.Peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of g.
func (g *Multigraph) Clone() *Multigraph {
	return &Multigraph{
		edges: append([]Edge(nil), g.edges...),
		n:     g.n,
	}
}

// Validate checks internal consistency: edge endpoints in range, no
// self-loops, and (when the CSR cache is built) incidence agreement with
// the edge list. It returns nil if the graph is well formed; it exists for
// tests and for graphs built by external decoders.
func (g *Multigraph) Validate() error {
	counts := make([]int, g.n)
	for id, e := range g.edges {
		if e.U < 0 || int(e.U) >= g.n || e.V < 0 || int(e.V) >= g.n {
			return fmt.Errorf("graph: edge %d endpoints %v out of range", id, e)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", id, e.U)
		}
		counts[e.U]++
		counts[e.V]++
	}
	c := g.ensureCSR()
	for v := 0; v < g.n; v++ {
		l := c.flat[c.off[v]:c.off[v+1]]
		if len(l) != counts[v] {
			return fmt.Errorf("graph: node %d incidence length %d, want %d", v, len(l), counts[v])
		}
		for _, in := range l {
			if int(in.Edge) >= len(g.edges) {
				return fmt.Errorf("graph: node %d references unknown edge %d", v, in.Edge)
			}
			e := g.edges[in.Edge]
			if (e.U != NodeID(v) || e.V != in.Peer) && (e.V != NodeID(v) || e.U != in.Peer) {
				return fmt.Errorf("graph: node %d incidence %+v disagrees with edge %v", v, in, e)
			}
		}
	}
	return nil
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Multigraph) BFS(src NodeID) []int {
	return g.MultiBFS([]NodeID{src})
}

// MultiBFS returns, for every node, the hop distance to the nearest of the
// given sources; unreachable nodes get -1. It is used by the
// shortest-path-to-sink baseline router.
func (g *Multigraph) MultiBFS(srcs []NodeID) []int {
	c := g.ensureCSR()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]NodeID, 0, len(srcs))
	for _, s := range srcs {
		g.check(s)
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, in := range c.flat[c.off[v]:c.off[v+1]] {
			if dist[in.Peer] == -1 {
				dist[in.Peer] = dist[v] + 1
				queue = append(queue, in.Peer)
			}
		}
	}
	return dist
}

// Components returns a component label per node (labels are 0,1,… in
// first-seen order) and the number of components.
func (g *Multigraph) Components() (label []int, count int) {
	c := g.ensureCSR()
	label = make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if label[v] != -1 {
			continue
		}
		queue := []NodeID{NodeID(v)}
		label[v] = count
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, in := range c.flat[c.off[x]:c.off[x+1]] {
				if label[in.Peer] == -1 {
					label[in.Peer] = count
					queue = append(queue, in.Peer)
				}
			}
		}
		count++
	}
	return label, count
}

// Connected reports whether the graph is connected (an empty graph counts
// as connected).
func (g *Multigraph) Connected() bool {
	_, c := g.Components()
	return c <= 1
}

// Diameter returns the largest finite BFS distance between any node pair,
// or -1 if the graph is disconnected or empty. O(n·(n+m)); intended for
// the small graphs used in experiments.
func (g *Multigraph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	d := 0
	for v := 0; v < g.n; v++ {
		dist := g.BFS(NodeID(v))
		for _, x := range dist {
			if x == -1 {
				return -1
			}
			if x > d {
				d = x
			}
		}
	}
	return d
}

// InducedSubgraph returns the subgraph induced by keep (nodes where
// keep[v] is true) together with the mapping old→new node id (-1 for
// dropped nodes). Edges with both endpoints kept are preserved in order.
func (g *Multigraph) InducedSubgraph(keep []bool) (*Multigraph, []NodeID) {
	if len(keep) != g.n {
		panic("graph: keep mask length mismatch")
	}
	remap := make([]NodeID, g.n)
	n := 0
	for v, k := range keep {
		if k {
			remap[v] = NodeID(n)
			n++
		} else {
			remap[v] = -1
		}
	}
	sub := New(n)
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			sub.AddEdge(remap[e.U], remap[e.V])
		}
	}
	return sub, remap
}

// String returns a compact description such as "multigraph(n=5, m=7, Δ=3)".
func (g *Multigraph) String() string {
	return fmt.Sprintf("multigraph(n=%d, m=%d, Δ=%d)", g.NumNodes(), g.NumEdges(), g.MaxDegree())
}
