package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file contains the topology generators used by the experiment
// harness. Every generator that needs randomness takes an explicit
// *rng.Source so experiments are reproducible.

// Line returns the path graph 0—1—…—(n-1).
func Line(n int) *Multigraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

// Cycle returns the n-cycle (n ≥ 3).
func Cycle(n int) *Multigraph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	g := Line(n)
	g.AddEdge(NodeID(n-1), 0)
	return g
}

// Complete returns K_n.
func Complete(n int) *Multigraph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return g
}

// Star returns a star with one hub (node 0) and n-1 leaves.
func Star(n int) *Multigraph {
	if n < 1 {
		panic("graph: Star needs n >= 1")
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	return g
}

// Grid returns the rows×cols grid; node (r,c) has id r*cols+c.
func Grid(rows, cols int) *Multigraph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid needs positive dimensions")
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows×cols grid with wrap-around links (rows, cols ≥ 3
// to avoid duplicate wrap edges collapsing into parallels unintentionally).
func Torus(rows, cols int) *Multigraph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs dimensions >= 3")
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) simple graph.
func GNP(n int, p float64, r *rng.Source) *Multigraph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(p) {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// ConnectedGNP returns G(n, p) conditioned on connectivity: it first draws
// a uniform random spanning tree skeleton (random attachment) and then
// adds each remaining pair independently with probability p.
func ConnectedGNP(n int, p float64, r *rng.Source) *Multigraph {
	if n < 1 {
		panic("graph: ConnectedGNP needs n >= 1")
	}
	g := New(n)
	present := make(map[[2]NodeID]bool)
	for i := 1; i < n; i++ {
		j := NodeID(r.IntN(i))
		g.AddEdge(NodeID(i), j)
		present[[2]NodeID{j, NodeID(i)}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k := [2]NodeID{NodeID(i), NodeID(j)}
			if !present[k] && r.Bool(p) {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// RandomMultigraph returns a connected multigraph with n nodes and exactly
// m ≥ n-1 edges: a random spanning tree plus m-(n-1) uniformly random
// (possibly parallel) extra edges.
func RandomMultigraph(n, m int, r *rng.Source) *Multigraph {
	if n < 1 {
		panic("graph: RandomMultigraph needs n >= 1")
	}
	if m < n-1 {
		panic(fmt.Sprintf("graph: RandomMultigraph needs m >= n-1 (%d < %d)", m, n-1))
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID(r.IntN(i)))
	}
	for g.NumEdges() < m {
		u := NodeID(r.IntN(n))
		v := NodeID(r.IntN(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Barbell returns two cliques of size k joined by a path of bridgeLen
// edges — the canonical bottleneck topology. Node ids: left clique
// [0,k), path interior, right clique at the end. The left-most clique
// node is 0 and the right-most clique node is NumNodes-1.
func Barbell(k, bridgeLen int) *Multigraph {
	if k < 1 || bridgeLen < 1 {
		panic("graph: Barbell needs k >= 1 and bridgeLen >= 1")
	}
	interior := bridgeLen - 1
	n := 2*k + interior
	g := New(n)
	// left clique [0,k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	// right clique [k+interior, n)
	for i := k + interior; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	// bridge from node k-1 through interior nodes to node k+interior
	prev := NodeID(k - 1)
	for i := 0; i < interior; i++ {
		g.AddEdge(prev, NodeID(k+i))
		prev = NodeID(k + i)
	}
	g.AddEdge(prev, NodeID(k+interior))
	return g
}

// Layered returns a layered graph: `layers` layers of `width` nodes each;
// every node of layer i is joined to each node of layer i+1 independently
// with probability p (at least one forward edge per node is forced so the
// graph stays connected layer to layer). Node id = layer*width + pos.
func Layered(layers, width int, p float64, r *rng.Source) *Multigraph {
	if layers < 1 || width < 1 {
		panic("graph: Layered needs positive dimensions")
	}
	g := New(layers * width)
	id := func(l, w int) NodeID { return NodeID(l*width + w) }
	for l := 0; l+1 < layers; l++ {
		for w := 0; w < width; w++ {
			linked := false
			for w2 := 0; w2 < width; w2++ {
				if r.Bool(p) {
					g.AddEdge(id(l, w), id(l+1, w2))
					linked = true
				}
			}
			if !linked {
				g.AddEdge(id(l, w), id(l+1, r.IntN(width)))
			}
		}
	}
	return g
}

// RandomGeometric places n nodes uniformly in the unit square and joins
// pairs at Euclidean distance ≤ radius. A wireless-style topology for the
// interference experiments. It returns the graph and the positions.
func RandomGeometric(n int, radius float64, r *rng.Source) (*Multigraph, [][2]float64) {
	g := New(n)
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{r.Float64(), r.Float64()}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			if math.Hypot(dx, dy) <= radius {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g, pos
}

// Thicken adds `extra` parallel copies of uniformly chosen existing edges,
// turning a simple graph into a proper multigraph. It panics if g has no
// edges and extra > 0.
func Thicken(g *Multigraph, extra int, r *rng.Source) *Multigraph {
	if extra > 0 && g.NumEdges() == 0 {
		panic("graph: Thicken on an edgeless graph")
	}
	c := g.Clone()
	base := g.NumEdges()
	for i := 0; i < extra; i++ {
		e := g.EdgeByID(EdgeID(r.IntN(base)))
		c.AddEdge(e.U, e.V)
	}
	return c
}

// ThetaGraph returns two terminal nodes joined by `paths` internally
// disjoint paths of the given length (edges per path, ≥ 1). Terminals are
// node 0 (left) and node 1 (right). The max-flow between the terminals is
// exactly `paths`, which makes this family convenient for calibrating
// feasibility experiments.
func ThetaGraph(paths, length int) *Multigraph {
	if paths < 1 || length < 1 {
		panic("graph: ThetaGraph needs positive parameters")
	}
	g := New(2)
	for p := 0; p < paths; p++ {
		prev := NodeID(0)
		for h := 1; h < length; h++ {
			v := g.AddNodes(1)
			g.AddEdge(prev, v)
			prev = v
		}
		g.AddEdge(prev, 1)
	}
	return g
}
