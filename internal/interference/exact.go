package interference

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// ExactScheduler computes a maximum-weight compatible subset of the
// planned sends — the literal "oracle providing an optimal set E_t" of
// Conjecture 5 — by branch and bound over the conflict graph, with the
// queue gradient q(from) − q'(to) as the link weight (the quantity the
// max-weight scheduling literature, e.g. Tassiulas–Ephremides, optimizes).
//
// The search is exponential in the worst case; beyond MaxSends candidate
// links it falls back to the gradient-greedy 1/2-approximation. That
// makes it usable both as a drop-in core.Interference for small networks
// and as a test oracle for the greedy schedulers.
type ExactScheduler struct {
	Model Model
	// MaxSends caps the exact search (default 24 when 0).
	MaxSends int

	fallback *Scheduler
}

// NewExact returns the exact oracle for the model.
func NewExact(m Model) *ExactScheduler { return &ExactScheduler{Model: m} }

// Name implements core.Interference.
func (s *ExactScheduler) Name() string { return fmt.Sprintf("%s/exact", s.Model) }

// Filter implements core.Interference.
func (s *ExactScheduler) Filter(sn *core.Snapshot, sends []core.Send) []core.Send {
	limit := s.MaxSends
	if limit <= 0 {
		limit = 24
	}
	if len(sends) > limit {
		if s.fallback == nil {
			s.fallback = NewOracle(s.Model)
		}
		return s.fallback.Filter(sn, sends)
	}
	best, _ := ExactMaxWeight(s.Model, sn, sends)
	// Copy back into the caller's buffer (the engine reuses it).
	n := copy(sends, best)
	return sends[:n]
}

// ExactMaxWeight returns a maximum-weight compatible subset of sends and
// its total weight. Weights are the declared-queue gradients clamped at
// zero (a non-positive-gradient link never increases the objective, but
// may still be selected at weight 0 when it conflicts with nothing).
func ExactMaxWeight(m Model, sn *core.Snapshot, sends []core.Send) ([]core.Send, int64) {
	g := sn.Spec.G
	type cand struct {
		send core.Send
		w    int64
	}
	cands := make([]cand, 0, len(sends))
	for _, s := range sends {
		w := sn.Q[s.From] - sn.Declared[s.To(g)]
		if w < 0 {
			w = 0
		}
		cands = append(cands, cand{send: s, w: w})
	}
	// Descending weight order makes the bound tight early.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].w > cands[j].w })

	// suffix[i] = total weight of cands[i:] — the optimistic bound.
	suffix := make([]int64, len(cands)+1)
	for i := len(cands) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + cands[i].w
	}

	blocked := make([]bool, g.NumNodes())
	chosen := make([]int, 0, len(cands))
	best := make([]int, 0, len(cands))
	var bestW int64 = -1

	var unblock func(e graph.Edge, saved []graph.NodeID)
	block := func(e graph.Edge) []graph.NodeID {
		var saved []graph.NodeID
		mark := func(v graph.NodeID) {
			if !blocked[v] {
				blocked[v] = true
				saved = append(saved, v)
			}
		}
		mark(e.U)
		mark(e.V)
		if m == Distance2 {
			for _, in := range g.Incident(e.U) {
				mark(in.Peer)
			}
			for _, in := range g.Incident(e.V) {
				mark(in.Peer)
			}
		}
		return saved
	}
	unblock = func(_ graph.Edge, saved []graph.NodeID) {
		for _, v := range saved {
			blocked[v] = false
		}
	}

	var cur int64
	var rec func(i int)
	rec = func(i int) {
		if cur+suffix[i] <= bestW {
			return // even taking everything left cannot beat best
		}
		if i == len(cands) {
			if cur > bestW {
				bestW = cur
				best = append(best[:0], chosen...)
			}
			return
		}
		e := g.EdgeByID(cands[i].send.Edge)
		if !blocked[e.U] && !blocked[e.V] {
			saved := block(e)
			chosen = append(chosen, i)
			cur += cands[i].w
			rec(i + 1)
			cur -= cands[i].w
			chosen = chosen[:len(chosen)-1]
			unblock(e, saved)
		}
		rec(i + 1) // skip cands[i]
	}
	rec(0)

	out := make([]core.Send, len(best))
	for k, i := range best {
		out[k] = cands[i].send
	}
	return out, maxInt64(bestW, 0)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
