package interference

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactPicksDominantMiddleLink(t *testing.T) {
	// Path 0-1-2-3, edges e0={0,1}, e1={1,2}, e2={2,3}. The middle link
	// conflicts with both outer links; its weight (100) dominates the
	// outer pair (6 + 7 = 13), so the optimum is {e1} alone.
	g := graph.Line(4)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(3, 1)
	q := []int64{6, 0, 100, 93}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	sends := []core.Send{
		{Edge: 0, From: 0}, // gradient 6
		{Edge: 1, From: 2}, // gradient 100
		{Edge: 2, From: 2}, // gradient 7
	}
	picked, w := ExactMaxWeight(NodeExclusive, sn, sends)
	if w != 100 {
		t.Fatalf("exact weight = %d, want 100", w)
	}
	if len(picked) != 1 || picked[0].Edge != 1 {
		t.Fatalf("picked = %+v", picked)
	}
}

func TestExactPicksOuterPair(t *testing.T) {
	// Same shape, but now the outer pair (9 + 8 = 17) beats the middle
	// link (10): exact must take both outer links, while the
	// heaviest-first greedy takes the middle one and stops at 10.
	g := graph.Line(4)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(3, 1)
	q := []int64{9, 0, 10, 2}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	sends := []core.Send{
		{Edge: 0, From: 0}, // 9
		{Edge: 1, From: 2}, // 10
		{Edge: 2, From: 2}, // 8
	}
	picked, w := ExactMaxWeight(NodeExclusive, sn, sends)
	if w != 17 || len(picked) != 2 {
		t.Fatalf("exact picked %+v weight %d, want the outer pair at 17", picked, w)
	}
	greedy := NewOracle(NodeExclusive).Filter(sn, append([]core.Send(nil), sends...))
	if len(greedy) != 1 || greedy[0].Edge != 1 {
		t.Fatalf("greedy should fall into the trap: %+v", greedy)
	}
}

func TestExactSimpleTrap(t *testing.T) {
	// Star with hub 0 and leaves 1..3: all sends leave the hub and
	// pairwise conflict; exact must take the single heaviest.
	g := graph.Star(4)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(1, 1)
	q := []int64{9, 5, 2, 7}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	sends := []core.Send{{Edge: 0, From: 0}, {Edge: 1, From: 0}, {Edge: 2, From: 0}}
	picked, w := ExactMaxWeight(NodeExclusive, sn, sends)
	if w != 7 || len(picked) != 1 { // best gradient: 9−2 = 7 via leaf 2
		t.Fatalf("picked %+v weight %d, want the gradient-7 link", picked, w)
	}
}

func TestExactSchedulerFallsBack(t *testing.T) {
	g := graph.Complete(10)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(9, 1)
	q := make([]int64, 10)
	for i := range q {
		q[i] = int64(10 - i)
	}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	sends := core.NewLGG().Plan(sn, nil)
	ex := NewExact(NodeExclusive)
	ex.MaxSends = 4 // force fallback
	kept := ex.Filter(sn, append([]core.Send(nil), sends...))
	if !IsCompatible(NodeExclusive, g, kept) {
		t.Fatal("fallback produced incompatible set")
	}
}

func TestExactName(t *testing.T) {
	if NewExact(NodeExclusive).Name() != "node-exclusive/exact" {
		t.Fatal(NewExact(NodeExclusive).Name())
	}
}

// Property: exact ≥ oracle-greedy ≥ exact/2 (the classic greedy matching
// guarantee), and both outputs are compatible subsets.
func TestQuickExactDominatesGreedy(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 4
		g := graph.RandomMultigraph(n, n+r.IntN(n), r)
		s := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
		q := make([]int64, n)
		for i := range q {
			q[i] = r.Int64N(10)
		}
		sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
		sends := core.NewLGG().Plan(sn, nil)
		if len(sends) > 18 {
			sends = sends[:18]
		}
		exact, exactW := ExactMaxWeight(NodeExclusive, sn, sends)
		if !IsCompatible(NodeExclusive, g, exact) {
			return false
		}
		greedy := NewOracle(NodeExclusive).Filter(sn, append([]core.Send(nil), sends...))
		var greedyW int64
		for _, snd := range greedy {
			w := sn.Q[snd.From] - sn.Declared[snd.To(g)]
			if w > 0 {
				greedyW += w
			}
		}
		if greedyW > exactW {
			return false // exact must dominate
		}
		return 2*greedyW >= exactW // greedy 1/2 guarantee
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: on tiny instances, branch and bound matches brute force.
func TestQuickExactMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6
		g := graph.RandomMultigraph(n, n+3, r)
		s := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
		q := make([]int64, n)
		for i := range q {
			q[i] = r.Int64N(8)
		}
		sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
		sends := core.NewLGG().Plan(sn, nil)
		if len(sends) > 12 {
			sends = sends[:12]
		}
		_, exactW := ExactMaxWeight(NodeExclusive, sn, sends)
		// brute force over all subsets
		var bruteW int64
		for mask := 0; mask < 1<<len(sends); mask++ {
			var sub []core.Send
			for i := range sends {
				if mask&(1<<i) != 0 {
					sub = append(sub, sends[i])
				}
			}
			if !IsCompatible(NodeExclusive, g, sub) {
				continue
			}
			var w int64
			for _, snd := range sub {
				d := sn.Q[snd.From] - sn.Declared[snd.To(g)]
				if d > 0 {
					w += d
				}
			}
			if w > bruteW {
				bruteW = w
			}
		}
		return exactW == bruteW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
