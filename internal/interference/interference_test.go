package interference

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func pathSnapshot(n int, q []int64) (*core.Snapshot, *graph.Multigraph) {
	g := graph.Line(n)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
	return &core.Snapshot{Spec: s, Q: q, Declared: q}, g
}

func TestGreedyNodeExclusiveOnPath(t *testing.T) {
	// Sends on consecutive path edges all conflict pairwise at shared
	// nodes; the greedy scheduler keeps alternate edges.
	sn, _ := pathSnapshot(5, []int64{4, 3, 2, 1, 0})
	sends := []core.Send{
		{Edge: 0, From: 0}, {Edge: 1, From: 1}, {Edge: 2, From: 2}, {Edge: 3, From: 3},
	}
	kept := NewGreedy(NodeExclusive).Filter(sn, sends)
	if len(kept) != 2 {
		t.Fatalf("kept %d sends, want 2 (alternating)", len(kept))
	}
	if kept[0].Edge != 0 || kept[1].Edge != 2 {
		t.Fatalf("kept = %+v", kept)
	}
	if !IsCompatible(NodeExclusive, sn.Spec.G, kept) {
		t.Fatal("greedy produced an incompatible set")
	}
}

func TestOraclePrefersSteepGradients(t *testing.T) {
	// Path 0-1-2: edge0 gradient small, edge1 gradient large; they
	// conflict at node 1. The oracle must keep edge1, the greedy keeps
	// edge0 (plan order).
	sn, g := pathSnapshot(3, []int64{2, 9, 0})
	sends := []core.Send{{Edge: 0, From: 0}, {Edge: 1, From: 1}}
	_ = g
	keptG := NewGreedy(NodeExclusive).Filter(sn, append([]core.Send(nil), sends...))
	if len(keptG) != 1 || keptG[0].Edge != 0 {
		t.Fatalf("greedy kept %+v", keptG)
	}
	keptO := NewOracle(NodeExclusive).Filter(sn, append([]core.Send(nil), sends...))
	if len(keptO) != 1 || keptO[0].Edge != 1 {
		t.Fatalf("oracle kept %+v, want the gradient-9 link", keptO)
	}
}

func TestDistance2StricterThanNodeExclusive(t *testing.T) {
	// Path 0-1-2-3: edges 0 and 2 share no endpoint but are adjacent
	// (nodes 1 and 2 are neighbours): compatible under NodeExclusive,
	// conflicting under Distance2.
	sn, g := pathSnapshot(4, []int64{3, 2, 1, 0})
	sends := []core.Send{{Edge: 0, From: 0}, {Edge: 2, From: 2}}
	if !IsCompatible(NodeExclusive, g, sends) {
		t.Fatal("edges 0,2 should be node-exclusive compatible")
	}
	if IsCompatible(Distance2, g, sends) {
		t.Fatal("edges 0,2 should conflict at distance 2")
	}
	kept := NewGreedy(Distance2).Filter(sn, sends)
	if len(kept) != 1 {
		t.Fatalf("distance-2 greedy kept %d", len(kept))
	}
}

func TestParallelEdgesConflict(t *testing.T) {
	g := graph.New(2)
	g.AddEdges(0, 1, 2)
	s := core.NewSpec(g).SetSource(0, 1).SetSink(1, 1)
	q := []int64{5, 0}
	sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
	sends := []core.Send{{Edge: 0, From: 0}, {Edge: 1, From: 0}}
	kept := NewGreedy(NodeExclusive).Filter(sn, sends)
	if len(kept) != 1 {
		t.Fatalf("parallel links must conflict, kept %d", len(kept))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	sn, _ := pathSnapshot(3, []int64{1, 0, 0})
	if got := NewGreedy(NodeExclusive).Filter(sn, nil); len(got) != 0 {
		t.Fatal("empty filter output")
	}
	one := []core.Send{{Edge: 0, From: 0}}
	if got := NewOracle(Distance2).Filter(sn, one); len(got) != 1 {
		t.Fatal("singleton dropped")
	}
}

func TestModelString(t *testing.T) {
	if NodeExclusive.String() != "node-exclusive" || Distance2.String() != "distance-2" {
		t.Fatal("model stringer")
	}
	if Model(7).String() == "" {
		t.Fatal("unknown model stringer empty")
	}
	if NewGreedy(NodeExclusive).Name() != "node-exclusive/greedy" {
		t.Fatal(NewGreedy(NodeExclusive).Name())
	}
	if NewOracle(Distance2).Name() != "distance-2/oracle" {
		t.Fatal(NewOracle(Distance2).Name())
	}
}

// Property: both schedulers always emit compatible, maximal subsets of
// the input (maximal: no dropped send could be added back).
func TestQuickSchedulerSound(t *testing.T) {
	f := func(seed uint64, nRaw uint8, grad bool) bool {
		r := rng.New(seed)
		n := int(nRaw%10) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		s := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(n-1), 1)
		q := make([]int64, n)
		for i := range q {
			q[i] = r.Int64N(6)
		}
		sn := &core.Snapshot{Spec: s, Q: q, Declared: q}
		// propose LGG's sends
		sends := core.NewLGG().Plan(sn, nil)
		orig := append([]core.Send(nil), sends...)
		var sch *Scheduler
		if grad {
			sch = NewOracle(NodeExclusive)
		} else {
			sch = NewGreedy(NodeExclusive)
		}
		kept := sch.Filter(sn, sends)
		if !IsCompatible(NodeExclusive, g, kept) {
			return false
		}
		// kept ⊆ orig
		inKept := map[core.Send]bool{}
		for _, k := range kept {
			inKept[k] = true
		}
		inOrig := map[core.Send]bool{}
		for _, o := range orig {
			inOrig[o] = true
		}
		for _, k := range kept {
			if !inOrig[k] {
				return false
			}
		}
		// maximality: every dropped send conflicts with something kept
		for _, o := range orig {
			if inKept[o] {
				continue
			}
			ok := false
			for _, k := range kept {
				if conflicts(NodeExclusive, g, o, k) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
