// Package interference implements the wireless interference models and
// schedulers of the Conjecture 5 experiments ("to deal with wireless
// interferences, we have to compute, for each step, the set of pairwise
// compatible links E_t").
//
// Two conflict models are provided:
//
//   - NodeExclusive: two links conflict when they share an endpoint
//     (node-exclusive spectrum sharing, the model of the paper's
//     reference [2]); compatible sets are matchings.
//   - Distance2: two links conflict when their endpoints are equal or
//     adjacent (802.11-style two-hop interference).
//
// Two schedulers filter a planned send set to a compatible subset:
//
//   - Greedy: keep sends in plan order — a maximal compatible set.
//   - Oracle: keep sends in descending queue-gradient order — a greedy
//     max-weight matching, the standard 1/2-approximation of the optimal
//     scheduler the conjecture postulates (exact on trees and whenever
//     gradients are uniform).
package interference

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Model selects the conflict relation between links.
type Model int

const (
	// NodeExclusive: links conflict iff they share an endpoint.
	NodeExclusive Model = iota
	// Distance2: links conflict iff their endpoint sets are equal,
	// intersecting, or adjacent in G.
	Distance2
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case NodeExclusive:
		return "node-exclusive"
	case Distance2:
		return "distance-2"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Scheduler filters send sets to compatible subsets under a Model.
type Scheduler struct {
	Model Model
	// ByGradient, when true, admits sends in descending gradient order
	// (the "oracle" surrogate); otherwise plan order is kept (greedy
	// maximal).
	ByGradient bool

	blocked []bool
	order   []int
}

// NewGreedy returns a plan-order maximal scheduler for the model.
func NewGreedy(m Model) *Scheduler { return &Scheduler{Model: m} }

// NewOracle returns the gradient-weighted greedy scheduler for the model.
func NewOracle(m Model) *Scheduler { return &Scheduler{Model: m, ByGradient: true} }

// Name implements core.Interference.
func (s *Scheduler) Name() string {
	kind := "greedy"
	if s.ByGradient {
		kind = "oracle"
	}
	return fmt.Sprintf("%s/%s", s.Model, kind)
}

// Filter implements core.Interference. The returned slice reuses the
// input's backing array.
func (s *Scheduler) Filter(sn *core.Snapshot, sends []core.Send) []core.Send {
	g := sn.Spec.G
	n := g.NumNodes()
	if cap(s.blocked) < n {
		s.blocked = make([]bool, n)
	}
	blocked := s.blocked[:n]
	for i := range blocked {
		blocked[i] = false
	}

	order := s.order[:0]
	for i := range sends {
		order = append(order, i)
	}
	if s.ByGradient {
		sort.SliceStable(order, func(a, b int) bool {
			return s.gradient(sn, sends[order[a]]) > s.gradient(sn, sends[order[b]])
		})
	}
	s.order = order

	// admit in order; write survivors compactly into sends[:k]
	admitted := make([]bool, len(sends))
	for _, i := range order {
		e := g.EdgeByID(sends[i].Edge)
		if blocked[e.U] || blocked[e.V] {
			continue
		}
		admitted[i] = true
		s.block(g, e, blocked)
	}
	k := 0
	for i, send := range sends {
		if admitted[i] {
			sends[k] = send
			k++
		}
	}
	return sends[:k]
}

func (s *Scheduler) gradient(sn *core.Snapshot, send core.Send) int64 {
	to := send.To(sn.Spec.G)
	return sn.Q[send.From] - sn.Declared[to]
}

// block marks the nodes a newly admitted link makes unusable.
func (s *Scheduler) block(g *graph.Multigraph, e graph.Edge, blocked []bool) {
	blocked[e.U] = true
	blocked[e.V] = true
	if s.Model == Distance2 {
		for _, in := range g.Incident(e.U) {
			blocked[in.Peer] = true
		}
		for _, in := range g.Incident(e.V) {
			blocked[in.Peer] = true
		}
	}
}

// IsCompatible reports whether a send set is pairwise compatible under
// the model — the invariant the schedulers guarantee; exported for tests
// and for validating external schedules.
func IsCompatible(m Model, g *graph.Multigraph, sends []core.Send) bool {
	for i := range sends {
		for j := i + 1; j < len(sends); j++ {
			if conflicts(m, g, sends[i], sends[j]) {
				return false
			}
		}
	}
	return true
}

func conflicts(m Model, g *graph.Multigraph, a, b core.Send) bool {
	ea, eb := g.EdgeByID(a.Edge), g.EdgeByID(b.Edge)
	if shareEndpoint(ea, eb) {
		return true
	}
	if m == Distance2 {
		return adjacent(g, ea, eb)
	}
	return false
}

func shareEndpoint(a, b graph.Edge) bool {
	return a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V
}

func adjacent(g *graph.Multigraph, a, b graph.Edge) bool {
	for _, x := range [2]graph.NodeID{a.U, a.V} {
		for _, in := range g.Incident(x) {
			if in.Peer == b.U || in.Peer == b.V {
				return true
			}
		}
	}
	return false
}
