package distsim

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func thetaSpec() *core.Spec {
	return core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 2).SetSink(1, 3)
}

// TestLockstepWithCoreEngine is the package's raison d'être: the
// message-passing implementation and the centrally simulated semantics
// must produce identical queue vectors at every round.
func TestLockstepWithCoreEngine(t *testing.T) {
	spec := thetaSpec()
	de := New(spec, nil)
	defer de.Close()
	ce := core.NewEngine(spec, core.NewLGG())
	for round := 0; round < 300; round++ {
		dq := de.Step()
		ce.Step()
		for v := range dq {
			if dq[v] != ce.Q[v] {
				t.Fatalf("round %d node %d: distributed %d vs central %d",
					round, v, dq[v], ce.Q[v])
			}
		}
	}
}

func TestLockstepWithLosses(t *testing.T) {
	spec := thetaSpec()
	lossModel := HashLoss{P: 0.3, Seed: 7}
	de := New(spec, lossModel)
	defer de.Close()
	ce := core.NewEngine(spec, core.NewLGG())
	ce.Loss = lossModel
	for round := 0; round < 300; round++ {
		dq := de.Step()
		ce.Step()
		for v := range dq {
			if dq[v] != ce.Q[v] {
				t.Fatalf("round %d node %d: distributed %d vs central %d",
					round, v, dq[v], ce.Q[v])
			}
		}
	}
}

// Property: lockstep equality holds on random connected multigraphs with
// random roles and hash losses.
func TestQuickLockstepUniversal(t *testing.T) {
	f := func(seed uint64, nRaw uint8, lossPct uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%8) + 3
		g := graph.RandomMultigraph(n, n+r.IntN(2*n), r)
		spec := core.NewSpec(g).SetSource(0, 1+r.Int64N(3)).SetSink(graph.NodeID(n-1), 1+r.Int64N(3))
		lossModel := HashLoss{P: float64(lossPct%60) / 100, Seed: seed}
		de := New(spec, lossModel)
		defer de.Close()
		ce := core.NewEngine(spec, core.NewLGG())
		ce.Loss = lossModel
		for round := 0; round < 50; round++ {
			dq := de.Step()
			ce.Step()
			for v := range dq {
				if dq[v] != ce.Q[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatisticsConsistency(t *testing.T) {
	spec := thetaSpec()
	de := New(spec, nil)
	defer de.Close()
	q := de.Run(200)
	st := de.Statistics()
	if st.Injected != 400 {
		t.Fatalf("injected = %d", st.Injected)
	}
	var stored int64
	for _, x := range q {
		stored += x
	}
	if st.Injected != st.Extracted+st.Lost+stored {
		t.Fatalf("conservation: %+v stored=%d", st, stored)
	}
	if st.Sent != st.Arrived+st.Lost {
		t.Fatalf("transmission accounting: %+v", st)
	}
}

func TestHashLossDeterministicAndPure(t *testing.T) {
	h := HashLoss{P: 0.5, Seed: 3}
	a := h.Lost(10, 2, 0)
	for i := 0; i < 10; i++ {
		if h.Lost(10, 2, 0) != a {
			t.Fatal("HashLoss is not pure")
		}
	}
	if (HashLoss{P: 0, Seed: 1}).Lost(0, 0, 0) {
		t.Fatal("p=0 lost")
	}
	if !(HashLoss{P: 1, Seed: 1}).Lost(0, 0, 0) {
		t.Fatal("p=1 delivered")
	}
	// rate sanity
	lost := 0
	for t2 := int64(0); t2 < 2000; t2++ {
		if (HashLoss{P: 0.25, Seed: 9}).Lost(t2, 1, 0) {
			lost++
		}
	}
	if lost < 380 || lost > 620 {
		t.Fatalf("hash loss rate %d/2000, want ~500", lost)
	}
}

func TestCloseIsIdempotentAndStepPanicsAfter(t *testing.T) {
	de := New(thetaSpec(), nil)
	de.Step()
	de.Close()
	de.Close() // second close is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Step after Close did not panic")
		}
	}()
	de.Step()
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	New(core.NewSpec(graph.Line(2)), nil)
}

func TestParallelEdgesDistributed(t *testing.T) {
	// Parallel edges each carry one packet per round, distributed too.
	g := graph.New(2)
	g.AddEdges(0, 1, 3)
	spec := core.NewSpec(g).SetSource(0, 3).SetSink(1, 3)
	de := New(spec, nil)
	defer de.Close()
	ce := core.NewEngine(spec, core.NewLGG())
	for round := 0; round < 50; round++ {
		dq := de.Step()
		ce.Step()
		if dq[0] != ce.Q[0] || dq[1] != ce.Q[1] {
			t.Fatalf("round %d: %v vs %v", round, dq, ce.Q)
		}
	}
	st := de.Statistics()
	if st.Extracted == 0 {
		t.Fatal("nothing delivered over parallel edges")
	}
}
