// Package distsim executes LGG as a genuinely distributed protocol: one
// goroutine per node, no shared queue state, neighbour queue lengths
// learned only through announcement messages, packets moved only through
// per-edge channels. It makes the paper's opening claim — the protocol is
// "localized since nodes only need information about their neighborhood"
// — literal: a node's goroutine closes over nothing but its own queue,
// its incident edge endpoints, and its mailbox.
//
// The synchronous network of Section II is realized as barrier-separated
// phases per round:
//
//	announce → plan+transmit → deliver → extract/inject
//
// Each phase ends at a barrier (sync.WaitGroup) so every node sees the
// same global time t, mirroring the paper's synchronous model. A
// cross-validation test runs this engine in lockstep with core.Engine and
// asserts identical queue vectors at every round — the distributed
// implementation and the centrally-simulated semantics coincide.
//
// Loss models must be pure functions of (t, edge) here (e.g. HashLoss):
// node goroutines evaluate them concurrently, and determinism across the
// two engines requires state-free decisions.
package distsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// HashLoss is a stateless Bernoulli loss model: a packet on edge e at
// time t is lost iff a hash of (Seed, t, e) falls below P. Being pure, it
// is safe for concurrent use and produces identical outcomes in distsim
// and core engines.
type HashLoss struct {
	P    float64
	Seed uint64
}

// Name implements core.LossModel.
func (h HashLoss) Name() string { return fmt.Sprintf("hashloss(p=%g)", h.P) }

// Lost implements core.LossModel.
func (h HashLoss) Lost(t int64, e graph.EdgeID, _ graph.NodeID) bool {
	if h.P <= 0 {
		return false
	}
	if h.P >= 1 {
		return true
	}
	x := rng.New(h.Seed).Split(uint64(t)).Split(uint64(e)).Float64()
	return x < h.P
}

// message types exchanged between node goroutines.
type announce struct {
	from graph.NodeID
	q    int64
}

type packet struct {
	edge graph.EdgeID
}

// node is the per-goroutine state. Everything a node knows is local.
type node struct {
	id       graph.NodeID
	queue    int64
	in, out  int64
	incident []graph.Incidence // ids + peer ids only (addressing, not state)

	announceBox chan announce
	packetBox   chan packet

	// snapshot of neighbour declarations for the current round
	declared map[graph.NodeID]int64
}

// Engine runs the distributed protocol. It is created with New and driven
// round by round from the caller's goroutine; node goroutines live for
// the Engine's lifetime and are shut down by Close.
type Engine struct {
	Spec *core.Spec
	Loss core.LossModel

	T     int64
	nodes []*node

	start   []chan phase
	done    *sync.WaitGroup
	lastQ   []int64
	stats   Stats
	statsMu sync.Mutex
	closed  bool
}

// Stats aggregates counters across rounds.
type Stats struct {
	Injected, Sent, Lost, Arrived, Extracted int64
}

type phase int

const (
	phaseAnnounce phase = iota
	phaseTransmit
	phaseDeliver
	phaseExtractInject
	phaseReport
	phaseShutdown
)

// New builds the distributed engine. Only classical semantics are
// supported (truthful declarations, exact arrivals, maximal extraction):
// the point of this engine is fidelity of the *distribution*, not the
// policy zoo — those are exercised on core.Engine.
func New(spec *core.Spec, lossModel core.LossModel) *Engine {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("distsim: invalid spec: %v", err))
	}
	if lossModel == nil {
		lossModel = core.NoLoss{}
	}
	n := spec.N()
	e := &Engine{
		Spec:  spec,
		Loss:  lossModel,
		nodes: make([]*node, n),
		start: make([]chan phase, n),
		done:  &sync.WaitGroup{},
		lastQ: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		inc := spec.G.Incident(graph.NodeID(v))
		e.nodes[v] = &node{
			id:          graph.NodeID(v),
			in:          spec.In[v],
			out:         spec.Out[v],
			incident:    inc,
			announceBox: make(chan announce, len(inc)),
			packetBox:   make(chan packet, len(inc)),
			declared:    make(map[graph.NodeID]int64, len(inc)),
		}
		e.start[v] = make(chan phase)
	}
	for v := 0; v < n; v++ {
		go e.run(e.nodes[v], e.start[v])
	}
	return e
}

// barrier runs one phase on every node goroutine and waits for all.
func (e *Engine) barrier(p phase) {
	e.done.Add(len(e.nodes))
	for _, ch := range e.start {
		ch <- p
	}
	e.done.Wait()
}

// Step executes one synchronous round and returns the queue vector after
// it (a fresh copy).
func (e *Engine) Step() []int64 {
	if e.closed {
		panic("distsim: Step after Close")
	}
	e.barrier(phaseAnnounce)
	e.barrier(phaseTransmit)
	e.barrier(phaseDeliver)
	e.barrier(phaseExtractInject)
	e.barrier(phaseReport)
	e.T++
	out := make([]int64, len(e.lastQ))
	copy(out, e.lastQ)
	return out
}

// Run executes steps rounds and returns the final queue vector.
func (e *Engine) Run(steps int64) []int64 {
	var q []int64
	for i := int64(0); i < steps; i++ {
		q = e.Step()
	}
	return q
}

// Stats returns a snapshot of the aggregate counters.
func (e *Engine) Statistics() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// Close terminates all node goroutines. The engine is unusable afterwards.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.done.Add(len(e.nodes))
	for _, ch := range e.start {
		ch <- phaseShutdown
	}
	e.done.Wait()
}

// run is the node goroutine: a state machine over barrier-separated
// phases. All decisions use only nd's fields — no global state.
func (e *Engine) run(nd *node, start <-chan phase) {
	var planned []graph.Incidence // sends decided in phaseTransmit
	for p := range start {
		switch p {
		case phaseAnnounce:
			// Injection opens the step ("each source s injects in(s)
			// packets in its queue", §II), then the post-injection queue
			// is announced to every neighbour — the snapshot q_t.
			if nd.in > 0 {
				nd.queue += nd.in
				e.addStats(func(s *Stats) { s.Injected += nd.in })
			}
			for _, in := range nd.incident {
				e.nodes[in.Peer].announceBox <- announce{from: nd.id, q: nd.queue}
			}
		case phaseTransmit:
			// Drain announcements (exactly deg many).
			for range nd.incident {
				a := <-nd.announceBox
				nd.declared[a.from] = a.q
			}
			// Algorithm 1, locally.
			planned = planned[:0]
			cands := make([]graph.Incidence, 0, len(nd.incident))
			for _, in := range nd.incident {
				if nd.declared[in.Peer] < nd.queue {
					cands = append(cands, in)
				}
			}
			sort.Slice(cands, func(i, j int) bool {
				qi, qj := nd.declared[cands[i].Peer], nd.declared[cands[j].Peer]
				if qi != qj {
					return qi < qj
				}
				return cands[i].Edge < cands[j].Edge
			})
			budget := nd.queue
			for _, c := range cands {
				if budget == 0 {
					break
				}
				planned = append(planned, c)
				budget--
			}
			// Transmit: packets leave now; losses decided on the wire.
			for _, c := range planned {
				nd.queue--
				e.addStats(func(s *Stats) { s.Sent++ })
				if e.Loss.Lost(e.T, c.Edge, nd.id) {
					e.addStats(func(s *Stats) { s.Lost++ })
					continue
				}
				e.nodes[c.Peer].packetBox <- packet{edge: c.Edge}
			}
		case phaseDeliver:
			// Receive whatever arrived (channel is buffered ≥ deg).
			for {
				select {
				case <-nd.packetBox:
					nd.queue++
					e.addStats(func(s *Stats) { s.Arrived++ })
					continue
				default:
				}
				break
			}
		case phaseExtractInject:
			if nd.out > 0 {
				amt := nd.out
				if nd.queue < amt {
					amt = nd.queue
				}
				nd.queue -= amt
				e.addStats(func(s *Stats) { s.Extracted += amt })
			}
		case phaseReport:
			e.lastQ[nd.id] = nd.queue
		case phaseShutdown:
			e.done.Done()
			return
		}
		e.done.Done()
	}
}

func (e *Engine) addStats(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// _ ensures HashLoss satisfies the core interface.
var _ core.LossModel = HashLoss{}
