package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasics(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestVarianceAndStd(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of single sample != 0")
	}
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(v, 4.571428571, 1e-6) {
		t.Fatalf("Variance = %v", v)
	}
	if !almost(StdDev([]float64{1, 1, 1}), 0, 1e-12) {
		t.Fatal("StdDev of constant sample != 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Median(xs) != 3 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated quantile = %v", got)
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("Summarize(nil) not zero")
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	r := FitLine(xs, ys)
	if !almost(r.Slope, 2, 1e-12) || !almost(r.Intercept, 1, 1e-12) || !almost(r.R2, 1, 1e-12) {
		t.Fatalf("FitLine = %+v", r)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if r := FitLine([]float64{1}, []float64{2}); r != (LinReg{}) {
		t.Fatalf("short input should give zero LinReg, got %+v", r)
	}
	r := FitLine([]float64{2, 2, 2}, []float64{1, 5, 9})
	if r.Slope != 0 || r.Intercept != 5 {
		t.Fatalf("constant-x fit = %+v", r)
	}
}

func TestFitSeries(t *testing.T) {
	r := FitSeries([]float64{10, 20, 30, 40})
	if !almost(r.Slope, 10, 1e-9) || !almost(r.Intercept, 10, 1e-9) {
		t.Fatalf("FitSeries = %+v", r)
	}
}

func TestMeanCI(t *testing.T) {
	m, h := MeanCI([]float64{4}, 1.96)
	if m != 4 || h != 0 {
		t.Fatalf("single-sample CI = %v ± %v", m, h)
	}
	m, h = MeanCI([]float64{1, 2, 3, 4, 5}, 1.96)
	if m != 3 || h <= 0 {
		t.Fatalf("CI = %v ± %v", m, h)
	}
}

func TestBatchMeansCI(t *testing.T) {
	// Strongly autocorrelated series: a slow sine. The batch-means CI
	// must be wider than the naive i.i.d. CI.
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 10 + math.Sin(float64(i)/200)
	}
	mean, half := BatchMeansCI(xs, 20, 1.96)
	if math.Abs(mean-Mean(xs)) > 1e-9 {
		t.Fatalf("batch mean %v vs %v", mean, Mean(xs))
	}
	_, naive := MeanCI(xs, 1.96)
	if half <= naive {
		t.Fatalf("batch CI %v not wider than naive %v on correlated data", half, naive)
	}
	// degenerate inputs fall back gracefully
	if _, h := BatchMeansCI(xs[:5], 10, 1.96); h != 0 {
		t.Fatal("short series should return zero half-width")
	}
}

func TestAutoCorr(t *testing.T) {
	// Alternating series: lag-1 autocorrelation ≈ −1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if ac := AutoCorr(xs, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 autocorr = %v, want ≈ −1", ac)
	}
	// constant series: undefined → 0
	if AutoCorr([]float64{3, 3, 3, 3}, 1) != 0 {
		t.Fatal("constant series autocorr should be 0")
	}
	if AutoCorr(xs, 0) != 0 || AutoCorr(xs, len(xs)) != 0 {
		t.Fatal("out-of-range lags should be 0")
	}
	// slow sine: lag-1 strongly positive
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = math.Sin(float64(i) / 100)
	}
	if ac := AutoCorr(ys, 1); ac < 0.9 {
		t.Fatalf("smooth series lag-1 autocorr = %v", ac)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 || h.NSamples != 7 {
		t.Fatalf("under/over = %d/%d n=%d", h.Under, h.Over, h.NSamples)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bucket1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Fatalf("bucket4 = %d", h.Counts[4])
	}
	if !almost(h.BucketMid(0), 1, 1e-12) {
		t.Fatalf("BucketMid(0) = %v", h.BucketMid(0))
	}
	if h.Mode() != 0 {
		t.Fatalf("Mode = %d", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInts(t *testing.T) {
	ys := Ints([]int64{1, -2, 3})
	if len(ys) != 3 || ys[1] != -2 {
		t.Fatalf("Ints = %v", ys)
	}
}

// Property: the mean lies between min and max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: R² of any fit is in [0, 1].
func TestQuickR2Range(t *testing.T) {
	f := func(raw []float64) bool {
		ys := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				ys = append(ys, x)
			}
		}
		r := FitSeries(ys)
		return r.R2 >= -1e-9 && r.R2 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonInterval(t *testing.T) {
	const tol = 1e-9
	cases := []struct {
		name   string
		k, n   int
		z      float64
		lo, hi float64
	}{
		// Reference values computed from the closed form directly; the
		// interesting rows are the boundary behaviours.
		{"no-information", 0, 0, 1.96, 0, 1},
		{"negative-n", 3, -1, 1.96, 0, 1},
		{"all-failures", 0, 10, 1.96, 0, 0.27754016876662},
		{"all-successes", 10, 10, 1.96, 0.72245983123338, 1},
		{"half", 5, 10, 1.96, 0.23658959361549, 0.76341040638451},
		{"single-success", 1, 1, 1.96, 0.20654329147389, 1},
		{"single-failure", 0, 1, 1.96, 0, 0.79345670852611},
		{"clamped-k-high", 99, 10, 1.96, 0.72245983123338, 1},
		{"clamped-k-low", -5, 10, 1.96, 0, 0.27754016876662},
		{"zero-z-point-estimate", 3, 4, 0, 0.75, 0.75},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lo, hi := WilsonInterval(c.k, c.n, c.z)
			if math.Abs(lo-c.lo) > tol || math.Abs(hi-c.hi) > tol {
				t.Fatalf("WilsonInterval(%d, %d, %g) = (%.14f, %.14f), want (%.14f, %.14f)",
					c.k, c.n, c.z, lo, hi, c.lo, c.hi)
			}
		})
	}
}

func TestHoeffdingInterval(t *testing.T) {
	const tol = 1e-9
	half10 := math.Sqrt(math.Log(2/0.05) / 20) // n=10, alpha=0.05
	cases := []struct {
		name   string
		k, n   int
		alpha  float64
		lo, hi float64
	}{
		{"no-information", 0, 0, 0.05, 0, 1},
		{"all-failures", 0, 10, 0.05, 0, half10},
		{"all-successes", 10, 10, 0.05, 1 - half10, 1},
		{"half", 5, 10, 0.05, 0.5 - half10, 0.5 + half10},
		{"bad-alpha-defaults", 5, 10, 0, 0.5 - half10, 0.5 + half10},
		{"clamped-k", 42, 10, 0.05, 1 - half10, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lo, hi := HoeffdingInterval(c.k, c.n, c.alpha)
			if math.Abs(lo-c.lo) > tol || math.Abs(hi-c.hi) > tol {
				t.Fatalf("HoeffdingInterval(%d, %d, %g) = (%.14f, %.14f), want (%.14f, %.14f)",
					c.k, c.n, c.alpha, lo, hi, c.lo, c.hi)
			}
		})
	}
}

// Property: Hoeffding contains Wilson's point estimate and is the wider
// (more conservative) of the two at matched confidence; both are ordered
// and inside [0, 1] for every (k, n).
func TestIntervalProperties(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			wlo, whi := WilsonInterval(k, n, 1.96)
			hlo, hhi := HoeffdingInterval(k, n, 0.05)
			for _, b := range []struct {
				name   string
				lo, hi float64
			}{{"wilson", wlo, whi}, {"hoeffding", hlo, hhi}} {
				if b.lo > b.hi || b.lo < 0 || b.hi > 1 {
					t.Fatalf("%s(%d,%d) disordered or out of range: (%g, %g)", b.name, k, n, b.lo, b.hi)
				}
			}
			if n == 0 {
				continue
			}
			p := float64(k) / float64(n)
			if wlo > p+1e-12 || whi < p-1e-12 {
				t.Fatalf("wilson(%d,%d) = (%g,%g) excludes p̂=%g", k, n, wlo, whi, p)
			}
			if hlo > wlo+1e-12 || hhi < whi-1e-12 {
				t.Fatalf("hoeffding(%d,%d) = (%g,%g) narrower than wilson (%g,%g)", k, n, hlo, hhi, wlo, whi)
			}
		}
	}
}
