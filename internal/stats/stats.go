// Package stats provides the small statistics toolkit used by the
// simulation harness: summary statistics, quantiles, linear regression
// (used by the stability detector to estimate the drift of the network
// state), confidence intervals and histograms.
//
// Everything operates on plain float64 slices and is allocation-conscious;
// the experiment harness calls these functions inside sweep loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P05, P95         float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
		P05:    Quantile(xs, 0.05),
		P95:    Quantile(xs, 0.95),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// LinReg holds a least-squares line y = Intercept + Slope·x together with
// the coefficient of determination R².
type LinReg struct {
	Slope, Intercept, R2 float64
}

// FitLine fits y = a + b·x by ordinary least squares over the points
// (xs[i], ys[i]). The slices must have equal length ≥ 2; otherwise a zero
// LinReg is returned.
func FitLine(xs, ys []float64) LinReg {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinReg{}
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{Intercept: my}
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinReg{Slope: b, Intercept: a, R2: r2}
}

// FitSeries fits a line to ys against implicit x = 0,1,2,…; convenient for
// time series.
func FitSeries(ys []float64) LinReg {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	return FitLine(xs, ys)
}

// MeanCI returns the sample mean of xs together with the half-width of a
// normal-approximation confidence interval at the given z value (z = 1.96
// for ~95%). For n < 2 the half-width is 0.
func MeanCI(xs []float64, z float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: k successes observed in n trials, at normal
// quantile z (1.96 for ~95%). Unlike the Wald interval it behaves at the
// boundaries — p̂ = 0 or 1 still yields a non-degenerate interval, which
// is exactly what the adaptive sweep's early-stopping rule needs when a
// cell is unanimously stable or unstable after a handful of seeds.
//
// Conventions: n <= 0 returns the no-information interval (0, 1); z <= 0
// collapses to the point estimate (p̂, p̂). k is clamped into [0, n].
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	p := float64(k) / float64(n)
	if z <= 0 {
		return p, p
	}
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HoeffdingInterval returns the distribution-free Hoeffding confidence
// interval for a binomial proportion: p̂ ± sqrt(ln(2/alpha) / 2n),
// clipped to [0, 1]. It is wider (more conservative) than Wilson at every
// n — the right choice when the early-stopping decision must not rely on
// the normal approximation at all.
//
// Conventions: n <= 0 returns (0, 1); alpha outside (0, 1) falls back to
// 0.05. k is clamped into [0, n].
func HoeffdingInterval(k, n int, alpha float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	p := float64(k) / float64(n)
	half := math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
	lo = p - half
	hi = p + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// BatchMeansCI estimates a confidence interval for the mean of a
// *correlated* time series using the method of batch means: the series is
// cut into `batches` contiguous batches, whose means are approximately
// independent when batches are longer than the correlation time. It
// returns the overall mean and the half-width at the given z. Simulation
// long-run averages (e.g. backlog series) need this — the naive i.i.d. CI
// is wildly overconfident on autocorrelated data.
func BatchMeansCI(xs []float64, batches int, z float64) (mean, half float64) {
	if batches < 2 || len(xs) < 2*batches {
		return Mean(xs), 0
	}
	bm := make([]float64, batches)
	for b := 0; b < batches; b++ {
		lo := b * len(xs) / batches
		hi := (b + 1) * len(xs) / batches
		bm[b] = Mean(xs[lo:hi])
	}
	return MeanCI(bm, z)
}

// AutoCorr returns the lag-k autocorrelation of xs (0 when undefined).
func AutoCorr(xs []float64, k int) float64 {
	n := len(xs)
	if k <= 0 || k >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+k < n; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	return num / den
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	NSamples int
}

// NewHistogram creates a histogram with nbuckets equal-width buckets over
// [lo, hi). It panics if nbuckets <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbuckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.NSamples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guards float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the index of the fullest bucket.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// Ints converts an integer slice to float64 for use with this package.
func Ints(xs []int64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = float64(x)
	}
	return ys
}
