package sim

import (
	"math"
	"testing"
)

// Additional detector cases: oscillation, drain, sqrt growth, step jumps.

func TestDetectOscillatingBounded(t *testing.T) {
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 50 + 40*math.Sin(float64(i)/7)
	}
	if d := Detect(xs); d.Verdict != Stable {
		t.Fatalf("bounded oscillation judged %v (%+v)", d.Verdict, d)
	}
}

func TestDetectDrainingTransient(t *testing.T) {
	// Large initial backlog draining to zero: stable, not inconclusive.
	xs := make([]float64, 300)
	for i := range xs {
		x := 1000 - 4*float64(i)
		if x < 0 {
			x = 0
		}
		xs[i] = x
	}
	if d := Detect(xs); d.Verdict != Stable {
		t.Fatalf("draining run judged %v (%+v)", d.Verdict, d)
	}
}

func TestDetectSqrtGrowthIsNotStable(t *testing.T) {
	// √t growth: genuinely unbounded, though sublinear. The detector may
	// call it diverging or inconclusive, but never stable, provided the
	// values clear the smallness threshold.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 40 * math.Sqrt(float64(i))
	}
	if d := Detect(xs); d.Verdict == Stable {
		t.Fatalf("√t growth judged stable (%+v)", d)
	}
}

func TestDetectStepJumpThenFlat(t *testing.T) {
	// A level shift that settles: stable.
	xs := make([]float64, 400)
	for i := range xs {
		if i < 100 {
			xs[i] = 10
		} else {
			xs[i] = 200
		}
	}
	if d := Detect(xs); d.Verdict != Stable {
		t.Fatalf("settled level shift judged %v", d.Verdict)
	}
}

func TestDetectLateTakeoff(t *testing.T) {
	// Flat then linear takeoff in the trailing half: diverging.
	xs := make([]float64, 400)
	for i := range xs {
		if i < 250 {
			xs[i] = 5
		} else {
			xs[i] = 5 + 10*float64(i-250)
		}
	}
	if d := Detect(xs); d.Verdict != Diverging {
		t.Fatalf("late takeoff judged %v (%+v)", d.Verdict, d)
	}
}

func TestDetectTinyNoiseIsStable(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 3) // 0,1,2 noise
	}
	if d := Detect(xs); d.Verdict != Stable {
		t.Fatalf("tiny noise judged %v", d.Verdict)
	}
}
