package sim

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func lineSpec(n int, in, out int64) *core.Spec {
	return core.NewSpec(graph.Line(n)).SetSource(0, in).SetSink(graph.NodeID(n-1), out)
}

func TestRunStableLine(t *testing.T) {
	e := core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	r := Run(e, Options{Horizon: 400})
	if r.Diagnosis.Verdict != Stable {
		t.Fatalf("verdict = %v (%+v)", r.Diagnosis.Verdict, r.Diagnosis)
	}
	if len(r.Series.Potential) != 400 || len(r.Series.Queued) != 400 {
		t.Fatalf("series lengths %d/%d", len(r.Series.Potential), len(r.Series.Queued))
	}
	if r.Totals.Steps != 400 {
		t.Fatalf("steps = %d", r.Totals.Steps)
	}
}

func TestRunDivergingLine(t *testing.T) {
	e := core.NewEngine(lineSpec(4, 3, 3), core.NewLGG())
	r := Run(e, Options{Horizon: 400})
	if r.Diagnosis.Verdict != Diverging {
		t.Fatalf("verdict = %v (%+v)", r.Diagnosis.Verdict, r.Diagnosis)
	}
	if r.Diagnosis.Slope <= 0 {
		t.Fatalf("slope = %v, want positive", r.Diagnosis.Slope)
	}
}

func TestRunStride(t *testing.T) {
	e := core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	r := Run(e, Options{Horizon: 100, Stride: 10})
	if len(r.Series.Potential) != 10 {
		t.Fatalf("strided series length %d, want 10", len(r.Series.Potential))
	}
}

func TestRunRecordDeltas(t *testing.T) {
	e := core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	r := Run(e, Options{Horizon: 50, RecordDeltas: true})
	if len(r.Series.Deltas) != 50 {
		t.Fatalf("deltas length %d", len(r.Series.Deltas))
	}
	// Deltas must telescope to the final potential (initial state empty).
	var sum float64
	for _, d := range r.Series.Deltas {
		sum += d
	}
	if sum != float64(r.Totals.FinalPotential) {
		t.Fatalf("telescoped %v, want %d", sum, r.Totals.FinalPotential)
	}
}

func TestRunRecordProfile(t *testing.T) {
	// Saturated line: the time-averaged profile must be a decreasing
	// staircase from source to sink.
	e := core.NewEngine(lineSpec(5, 1, 1), core.NewLGG())
	r := Run(e, Options{Horizon: 2000, RecordProfile: true})
	if len(r.MeanQueues) != 5 {
		t.Fatalf("profile length %d", len(r.MeanQueues))
	}
	for v := 0; v+1 < len(r.MeanQueues); v++ {
		if r.MeanQueues[v] < r.MeanQueues[v+1] {
			t.Fatalf("profile not decreasing at %d: %v", v, r.MeanQueues)
		}
	}
	if r.MeanQueues[0] <= 0 {
		t.Fatal("source mean queue should be positive")
	}
	// without the flag, nothing recorded
	e2 := core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	if r2 := Run(e2, Options{Horizon: 50}); r2.MeanQueues != nil {
		t.Fatal("profile recorded without the flag")
	}
}

func TestRunPanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted horizon 0")
		}
	}()
	Run(core.NewEngine(lineSpec(3, 1, 1), core.NewLGG()), Options{})
}

func TestDetectEdgeCases(t *testing.T) {
	if d := Detect(make([]float64, 5)); d.Verdict != Inconclusive {
		t.Fatalf("short series: %v", d.Verdict)
	}
	zeros := make([]float64, 100)
	if d := Detect(zeros); d.Verdict != Stable {
		t.Fatalf("all-zero series: %v", d.Verdict)
	}
	// Linear growth: clearly diverging.
	lin := make([]float64, 100)
	for i := range lin {
		lin[i] = float64(i)
	}
	if d := Detect(lin); d.Verdict != Diverging {
		t.Fatalf("linear series: %v (%+v)", d.Verdict, d)
	}
	// Flat positive: stable.
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 42
	}
	if d := Detect(flat); d.Verdict != Stable {
		t.Fatalf("flat series: %v", d.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if Stable.String() != "stable" || Diverging.String() != "diverging" ||
		Inconclusive.String() != "inconclusive" {
		t.Fatal("verdict strings")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict empty")
	}
}

func TestRunSeedsParallelAndOrdered(t *testing.T) {
	seeds := Seeds(100, 8)
	if seeds[0] != 100 || seeds[7] != 107 {
		t.Fatalf("seeds = %v", seeds)
	}
	rs := RunSeeds(func(seed uint64) *core.Engine {
		return core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	}, seeds, Options{Horizon: 100})
	if len(rs) != 8 {
		t.Fatalf("results = %d", len(rs))
	}
	if !AllVerdict(rs, Stable) {
		t.Fatal("stable line misjudged in some seed")
	}
	if StableShare(rs) != 1 {
		t.Fatalf("stable share = %v", StableShare(rs))
	}
}

func TestForEachCoversAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	var total int32
	ForEach(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
		atomic.AddInt32(&total, 1)
	})
	if total != n {
		t.Fatalf("total = %d", total)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// n smaller than worker count
	var small int32
	ForEach(1, func(i int) { atomic.AddInt32(&small, 1) })
	if small != 1 {
		t.Fatal("ForEach(1) wrong")
	}
	ForEach(0, func(i int) { t.Fatal("ForEach(0) called fn") })
}

func TestExtractors(t *testing.T) {
	rs := RunSeeds(func(uint64) *core.Engine {
		return core.NewEngine(lineSpec(3, 1, 1), core.NewLGG())
	}, Seeds(0, 3), Options{Horizon: 64})
	pk := PeakPotentials(rs)
	mb := MeanBacklogs(rs)
	if len(pk) != 3 || len(mb) != 3 {
		t.Fatal("extractor lengths")
	}
	for i := range pk {
		if pk[i] < 0 || mb[i] < 0 {
			t.Fatal("negative extraction")
		}
	}
	if StableShare(nil) != 0 {
		t.Fatal("empty StableShare")
	}
	if AllVerdict(nil, Stable) {
		t.Fatal("AllVerdict on empty should be false")
	}
}

func TestForEachWorkersCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var hits [37]int32
		ForEachWorkers(len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
	// n = 0 must be a no-op, not a hang.
	ForEachWorkers(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestVerdictTextRoundTrip(t *testing.T) {
	for _, v := range []Verdict{Inconclusive, Stable, Diverging} {
		b, err := v.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Verdict
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %v -> %s -> %v", v, b, got)
		}
	}
	var v Verdict
	if err := v.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("bogus verdict accepted")
	}
}
