package sim

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a := Run(core.NewEngine(lineSpec(4, 1, 2), core.NewLGG()), Options{Horizon: 300})
	b := RunContext(context.Background(), core.NewEngine(lineSpec(4, 1, 2), core.NewLGG()),
		Options{Horizon: 300})
	if a.Totals != b.Totals || a.Diagnosis != b.Diagnosis {
		t.Fatalf("Run and RunContext diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := RunContext(ctx, core.NewEngine(lineSpec(3, 1, 1), core.NewLGG()), Options{Horizon: 500})
	if r.Totals.Steps != 0 {
		t.Fatalf("cancelled run executed %d steps, want 0", r.Totals.Steps)
	}
	if r.Diagnosis.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want inconclusive", r.Diagnosis.Verdict)
	}
}

func TestRunContextCancelMidRunReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cancelAt int64 = 100
	stop := core.ObserverFunc(func(tt int64, _ *core.Snapshot, _ *core.StepStats) {
		if tt == cancelAt {
			cancel()
		}
	})
	r := RunContext(ctx, core.NewEngine(lineSpec(3, 1, 1), core.NewLGG()),
		Options{Horizon: 100000, Observers: []core.StepObserver{stop}, RecordProfile: true})
	if r.Totals.Steps <= cancelAt || r.Totals.Steps >= 100000 {
		t.Fatalf("partial run executed %d steps, want a little over %d", r.Totals.Steps, cancelAt)
	}
	// The cancellation poll runs every 64 steps, so the overshoot is
	// bounded by one batch.
	if r.Totals.Steps > cancelAt+cancelCheckMask+1 {
		t.Fatalf("cancellation noticed after %d steps, want <= %d",
			r.Totals.Steps-cancelAt, cancelCheckMask+1)
	}
	if r.Diagnosis.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want inconclusive", r.Diagnosis.Verdict)
	}
	if len(r.MeanQueues) == 0 {
		t.Fatal("partial run dropped the recorded profile")
	}
}

func TestRunInvokesOptionObservers(t *testing.T) {
	reg := metrics.NewRegistry()
	sm := metrics.NewStepMetrics(reg)
	r := Run(core.NewEngine(lineSpec(3, 1, 1), core.NewLGG()),
		Options{Horizon: 250, Observers: []core.StepObserver{sm}})
	if got := sm.Steps.Value(); got != 250 {
		t.Fatalf("observer saw %d steps, want 250", got)
	}
	if got := sm.Injected.Value(); got != r.Totals.Injected {
		t.Fatalf("observer injected %d, totals %d", got, r.Totals.Injected)
	}
}

// TestRunSeedsSharedObserverRace shares one registry-backed observer
// across a concurrent seed fleet; under -race this is the concurrent
// observer contract test, and the aggregate totals must match the sum
// of the per-run totals exactly.
func TestRunSeedsSharedObserverRace(t *testing.T) {
	reg := metrics.NewRegistry()
	sm := metrics.NewStepMetrics(reg)
	build := func(seed uint64) *core.Engine {
		return core.NewEngine(lineSpec(5, 1, 2), core.NewLGG())
	}
	rs := RunSeeds(build, Seeds(1, 16), Options{Horizon: 200,
		Observers: []core.StepObserver{sm}})
	var wantInjected, wantExtracted int64
	for _, r := range rs {
		wantInjected += r.Totals.Injected
		wantExtracted += r.Totals.Extracted
	}
	if got := sm.Steps.Value(); got != 16*200 {
		t.Fatalf("steps counter = %d, want %d", got, 16*200)
	}
	if got := sm.Injected.Value(); got != wantInjected {
		t.Fatalf("injected counter = %d, want %d", got, wantInjected)
	}
	if got := sm.Extracted.Value(); got != wantExtracted {
		t.Fatalf("extracted counter = %d, want %d", got, wantExtracted)
	}
}

func TestForEachWorkersDegenerateInputs(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
		wantCalls  int
	}{
		{"zero n", 0, 4, 0},
		{"negative n", -3, 4, 0},
		{"zero workers means GOMAXPROCS", 9, 0, 9},
		{"negative workers means GOMAXPROCS", 9, -2, 9},
		{"more workers than n", 3, 64, 3},
		{"single worker", 5, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			seen := map[int]int{}
			ForEachWorkers(tc.n, tc.workers, func(i int) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			if len(seen) != tc.wantCalls {
				t.Fatalf("fn called for %d distinct indices, want %d", len(seen), tc.wantCalls)
			}
			for i, c := range seen {
				if c != 1 || i < 0 || i >= tc.n {
					t.Fatalf("index %d called %d times (n=%d)", i, c, tc.n)
				}
			}
		})
	}
}

func TestSeedsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		base uint64
		n    int
		want []uint64
	}{
		{"zero n", 7, 0, nil},
		{"negative n", 7, -5, nil},
		{"normal", 7, 3, []uint64{7, 8, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Seeds(tc.base, tc.n)
			if len(got) != len(tc.want) {
				t.Fatalf("Seeds(%d, %d) = %v, want %v", tc.base, tc.n, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("Seeds(%d, %d) = %v, want %v", tc.base, tc.n, got, tc.want)
				}
			}
		})
	}
}
