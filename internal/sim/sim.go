// Package sim runs network engines over long horizons, records the
// time series the paper's definitions are phrased in (the network state
// P_t = Σ q_t(v)², the backlog N_t = Σ q_t(v)), and decides empirically
// whether a run is stable ("the number of packets stored in the network
// remains bounded", Definition 2) or diverging.
//
// Multi-seed and sweep helpers execute runs on a bounded worker pool, one
// engine per goroutine — engines and routers are single-threaded by
// design, so parallelism happens strictly across runs.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Series holds per-step time series of a run. With Stride > 1 in Options
// only every Stride-th step is recorded (the step index is implicit).
type Series struct {
	Stride    int64
	Potential []float64 // P_t after each recorded step
	Queued    []float64 // N_t after each recorded step
	MaxQ      []float64
	Deltas    []float64 // P_{t+1} − P_t for every executed step (always stride 1)
}

// Options tunes a Run.
type Options struct {
	// Horizon is the number of steps to execute. Required.
	Horizon int64
	// Stride subsamples the recorded series (default 1 = every step).
	Stride int64
	// RecordDeltas additionally keeps every one-step potential change
	// (needed by the Property 1/2 experiments).
	RecordDeltas bool
	// RecordProfile additionally accumulates the time-averaged queue
	// length per node (the staircase profiles of E21).
	RecordProfile bool
	// Observers are invoked after every executed step, following any
	// observers registered directly on the engine. They receive the
	// engine's per-step buffers (valid only during the call) and, when a
	// run fleet shares one observer (RunSeeds, sweeps), must be safe for
	// concurrent use — see core.StepObserver.
	Observers []core.StepObserver
	// Shards > 1 runs the engine's partition-parallel step path over a
	// deterministic BFS partition of the topology (core.EnableSharding).
	// Output is byte-identical to a serial run at any shard count; the
	// knob trades per-step sweep cost for partition overhead. Engines
	// whose router cannot be sharded (or that are already sharded by
	// their factory) silently run serial — sharding is an execution
	// strategy, never a semantic change.
	Shards int
	// ShardWorkers bounds intra-step parallelism when Shards > 1: 1 (the
	// right choice inside sweeps, which already parallelize across runs)
	// executes shards inline; 0 means one worker per available CPU.
	ShardWorkers int
}

// Verdict classifies a run's boundedness.
type Verdict int

const (
	// Inconclusive: the detector cannot call it either way.
	Inconclusive Verdict = iota
	// Stable: the backlog shows no sustained growth.
	Stable
	// Diverging: the backlog grows steadily through the end of the run.
	Diverging
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Stable:
		return "stable"
	case Diverging:
		return "diverging"
	case Inconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalText encodes the verdict as its String form, so JSON sweep
// outputs carry "stable"/"diverging"/"inconclusive" instead of raw ints.
func (v Verdict) MarshalText() ([]byte, error) {
	return []byte(v.String()), nil
}

// UnmarshalText is the inverse of MarshalText.
func (v *Verdict) UnmarshalText(b []byte) error {
	for _, c := range []Verdict{Inconclusive, Stable, Diverging} {
		if string(b) == c.String() {
			*v = c
			return nil
		}
	}
	return fmt.Errorf("sim: unknown verdict %q", b)
}

// Diagnosis carries the detector's evidence.
type Diagnosis struct {
	Verdict Verdict
	// Slope is the fitted backlog growth per step over the trailing half.
	Slope float64
	// RelGrowth is the backlog growth across the trailing half relative
	// to its mean level.
	RelGrowth float64
	// R2 of the trailing-half linear fit.
	R2 float64
}

// Result is a completed run.
type Result struct {
	Totals    core.Totals
	Series    Series
	Diagnosis Diagnosis
	// MeanQueues is the per-node time-averaged queue length (only with
	// Options.RecordProfile).
	MeanQueues []float64
}

// Run executes the engine for opts.Horizon steps and classifies the run.
// It is RunContext with a background (never-cancelled) context.
func Run(e *core.Engine, opts Options) *Result {
	return RunContext(context.Background(), e, opts)
}

// cancelCheckMask batches the cancellation poll: the context is checked
// every 64 steps, so even fine-grained deadlines cost one non-blocking
// channel select per 64 engine steps.
const cancelCheckMask = 63

// RunContext executes the engine for opts.Horizon steps, stopping early
// when ctx is cancelled or its deadline passes. A cancelled run returns
// the partial Result accumulated so far with an Inconclusive verdict —
// callers distinguish "cancelled" from "genuinely inconclusive" by
// Totals.Steps < opts.Horizon (or by ctx.Err()). A full-length run is
// classified by Detect as usual.
func RunContext(ctx context.Context, e *core.Engine, opts Options) *Result {
	if opts.Horizon <= 0 {
		panic("sim: Run needs a positive horizon")
	}
	if opts.Shards > 1 {
		if k, _ := e.Sharding(); k == 0 {
			p := shard.ByBFS(e.Spec.G, opts.Shards)
			if err := e.EnableSharding(p, opts.ShardWorkers); err == nil {
				// Always detach before returning: engines outlive their
				// runs (callers read Q, re-run, pool them) and worker
				// goroutines must not outlive the run that spawned them.
				defer e.DisableSharding()
			}
		}
	}
	stride := opts.Stride
	if stride <= 0 {
		stride = 1
	}
	res := &Result{Series: Series{Stride: stride}}
	var profile []float64
	if opts.RecordProfile {
		profile = make([]float64, len(e.Q))
	}
	done := ctx.Done()
	cancelled := false
	steps := int64(0)
	prevP := core.Potential(e.Q)
	for i := int64(0); i < opts.Horizon; i++ {
		if done != nil && i&cancelCheckMask == 0 {
			select {
			case <-done:
				cancelled = true
			default:
			}
			if cancelled {
				break
			}
		}
		st := e.Step()
		steps++
		res.Totals.Add(st)
		for _, o := range opts.Observers {
			o.OnStep(st.T, e.Snapshot(), &st)
		}
		if opts.RecordDeltas {
			res.Series.Deltas = append(res.Series.Deltas, float64(st.Potential-prevP))
		}
		if profile != nil {
			for v, q := range e.Q {
				profile[v] += float64(q)
			}
		}
		prevP = st.Potential
		if i%stride == 0 {
			res.Series.Potential = append(res.Series.Potential, float64(st.Potential))
			res.Series.Queued = append(res.Series.Queued, float64(st.Queued))
			res.Series.MaxQ = append(res.Series.MaxQ, float64(st.MaxQueue))
		}
	}
	if profile != nil {
		if steps > 0 {
			for v := range profile {
				profile[v] /= float64(steps)
			}
		}
		res.MeanQueues = profile
	}
	if cancelled {
		res.Diagnosis = Diagnosis{Verdict: Inconclusive}
		return res
	}
	res.Diagnosis = Detect(res.Series.Queued)
	return res
}

// Detect classifies a backlog series. The rule of thumb: fit a line to
// the trailing half; sustained relative growth with a good fit means
// divergence, near-zero relative growth means stability.
func Detect(queued []float64) Diagnosis {
	n := len(queued)
	if n < 16 {
		return Diagnosis{Verdict: Inconclusive}
	}
	tail := queued[n/2:]
	fit := stats.FitSeries(tail)
	level := stats.Mean(tail)
	if level <= 0 {
		// Nothing stored during the whole trailing half: trivially stable.
		return Diagnosis{Verdict: Stable}
	}
	// Absolute smallness: a backlog that never exceeded a handful of
	// packets over a long horizon is bounded no matter how its noise
	// fits a line — a truly diverging run accumulates Ω(horizon).
	if smallCap := 10 + float64(n)/50; stats.Max(tail) <= smallCap {
		return Diagnosis{Verdict: Stable, Slope: fit.Slope,
			RelGrowth: fit.Slope * float64(len(tail)) / level, R2: fit.R2}
	}
	growth := fit.Slope * float64(len(tail)) / level
	d := Diagnosis{Slope: fit.Slope, RelGrowth: growth, R2: fit.R2}
	switch {
	case growth > 0.5 && fit.R2 > 0.5:
		d.Verdict = Diverging
	case growth < 0.1:
		// Flat or shrinking backlog — bounded. A strongly negative slope
		// is a draining transient, not instability.
		d.Verdict = Stable
	default:
		d.Verdict = Inconclusive
	}
	return d
}

// EngineFactory builds a fresh engine for a given seed. Factories must
// return independent engines (no shared routers or RNG streams) because
// runs execute concurrently.
type EngineFactory func(seed uint64) *core.Engine

// RunSeeds executes one run per seed on a worker pool and returns results
// in seed order.
func RunSeeds(build EngineFactory, seeds []uint64, opts Options) []*Result {
	results := make([]*Result, len(seeds))
	ForEach(len(seeds), func(i int) {
		results[i] = Run(build(seeds[i]), opts)
	})
	return results
}

// ForEach runs fn(i) for i in [0, n) on min(n, GOMAXPROCS) goroutines.
func ForEach(n int, fn func(i int)) {
	ForEachWorkers(n, 0, fn)
}

// ForEachWorkers runs fn(i) for i in [0, n) on min(n, workers) goroutines,
// dispatching indices in increasing order. Degenerate inputs are defined,
// not errors: n <= 0 performs no calls and returns immediately, and
// workers <= 0 means GOMAXPROCS.
func ForEachWorkers(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Seeds returns the deterministic seed list {base, base+1, …} of length n
// used throughout the experiment harness. n <= 0 yields an empty list
// (never a panic), mirroring ForEachWorkers' tolerance of empty input.
func Seeds(base uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// StableShare returns the fraction of results judged Stable.
func StableShare(rs []*Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	c := 0
	for _, r := range rs {
		if r.Diagnosis.Verdict == Stable {
			c++
		}
	}
	return float64(c) / float64(len(rs))
}

// AllVerdict reports whether every result has the given verdict.
func AllVerdict(rs []*Result, v Verdict) bool {
	for _, r := range rs {
		if r.Diagnosis.Verdict != v {
			return false
		}
	}
	return len(rs) > 0
}

// PeakPotentials extracts PeakPotential per result.
func PeakPotentials(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Totals.PeakPotential)
	}
	return out
}

// MeanBacklogs extracts the trailing-half mean backlog per result.
func MeanBacklogs(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		q := r.Series.Queued
		out[i] = stats.Mean(q[len(q)/2:])
	}
	return out
}
