// Observability, run-control and harness surface of package repro.
//
// This file re-exports the streaming observability layer
// (internal/metrics), the context-aware run API (internal/sim), the
// sweep harness (internal/sweep + internal/experiments), the trace
// serializers (internal/trace), and the analysis machinery the
// examples/ programs are built on (internal/cutsplit, internal/chain,
// internal/flow, internal/stats, internal/distsim) — so complete
// studies can be written against package repro alone.
package repro

import (
	"context"
	"io"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/cutsplit"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Observability types. A StepObserver hangs off an Engine
// (Engine.AddObserver) or a run (Options.Observers) and sees every step;
// the metrics implementations feed a Registry that WriteProm exposes as
// Prometheus text.
type (
	// StepObserver receives every engine step as it completes.
	StepObserver = core.StepObserver
	// ObserverFunc adapts a function to a StepObserver.
	ObserverFunc = core.ObserverFunc
	// Registry holds named counters, gauges and histograms.
	Registry = metrics.Registry
	// Counter is a monotone atomic counter.
	Counter = metrics.Counter
	// Gauge is an atomic last-value (or running-max) instrument.
	Gauge = metrics.Gauge
	// Histogram is a fixed-bucket atomic histogram.
	Histogram = metrics.Histogram
	// StepMetrics feeds the canonical lgg_* metrics from the step path;
	// one instance may be shared by a whole fleet of engines.
	StepMetrics = metrics.StepMetrics
	// DriftObserver tracks the one-step potential change ΔP_t (Lemma 1);
	// use one per engine.
	DriftObserver = metrics.DriftObserver
	// EventWriter streams per-step JSONL events; use one per engine.
	EventWriter = metrics.EventWriter
	// MultiObserver fans one step out to several observers.
	MultiObserver = metrics.Multi
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// NewStepMetrics returns the canonical step-metrics observer bound to r.
func NewStepMetrics(r *Registry) *StepMetrics { return metrics.NewStepMetrics(r) }

// NewDriftObserver returns a per-engine ΔP_t drift observer bound to r.
func NewDriftObserver(r *Registry) *DriftObserver { return metrics.NewDriftObserver(r) }

// NewEventWriter returns a per-engine JSONL step-event streamer.
func NewEventWriter(w io.Writer) *EventWriter { return metrics.NewEventWriter(w) }

// Run-control API.

// EngineFactory builds an engine for one seed of a multi-seed study.
type EngineFactory = sim.EngineFactory

// Series is the recorded per-run time series (P_t, N_t, max queue).
type Series = sim.Series

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes mid-run, the partial Result (verdict Inconclusive) is
// returned promptly.
func RunContext(ctx context.Context, e *Engine, opts Options) *Result {
	return sim.RunContext(ctx, e, opts)
}

// RunSeeds executes one run per seed on a bounded worker pool.
func RunSeeds(build EngineFactory, seeds []uint64, opts Options) []*Result {
	return sim.RunSeeds(build, seeds, opts)
}

// Seeds derives n per-run seeds from a base seed.
func Seeds(base uint64, n int) []uint64 { return sim.Seeds(base, n) }

// Trace serializers.

// RunSummary is the stable JSON summary of one run.
type RunSummary = trace.Summary

// Summarize builds a RunSummary from a finished run.
func Summarize(spec *Spec, routerName string, r *Result) RunSummary {
	return trace.Summarize(spec, routerName, r)
}

// WriteSummaryJSON / ReadSummaryJSON round-trip a RunSummary.
func WriteSummaryJSON(w io.Writer, s RunSummary) error { return trace.WriteJSON(w, s) }
func ReadSummaryJSON(r io.Reader) (RunSummary, error)  { return trace.ReadJSON(r) }

// WriteSeriesCSV streams a run's time series as CSV.
func WriteSeriesCSV(w io.Writer, s *Series) error { return trace.WriteSeriesCSV(w, s) }

// Sweep harness.
type (
	// SweepGrid declares a cartesian sweep (networks × routers × variants).
	SweepGrid = sweep.Grid
	// SweepJob is one run of a sweep.
	SweepJob = sweep.Job
	// SweepDesc identifies a run within its grid.
	SweepDesc = sweep.Desc
	// SweepResult is the per-run summary a sweep emits in grid order.
	SweepResult = sweep.Result
	// SweepRunner executes jobs on a bounded worker pool, deterministically.
	SweepRunner = sweep.Runner
	// CellStats aggregates the replicas of one grid cell.
	CellStats = sweep.CellStats
	// EventStreamer turns a SweepRunner's result callback into JSONL events.
	EventStreamer = sweep.EventStreamer
	// NamedGrid is a registered experiment grid (see SweepGrids).
	NamedGrid = experiments.NamedGrid
	// SweepConfig parameterizes the registered grids.
	SweepConfig = experiments.Config
)

// NewEventStreamer streams sweep events to w; wire its OnResult into a
// SweepRunner. replicas > 0 also emits per-cell aggregates.
func NewEventStreamer(w io.Writer, replicas int) *EventStreamer {
	return sweep.NewEventStreamer(w, replicas)
}

// SweepGrids lists the registered experiment grids; FindGrid looks one
// up by name.
func SweepGrids() []NamedGrid                 { return experiments.SweepGrids() }
func FindGrid(name string) (NamedGrid, error) { return experiments.FindGrid(name) }

// AggregateCells folds an in-order result list into per-cell statistics
// (replicas consecutive runs per cell). It errors when the list is not a
// whole number of cells — trim to len(rs)-len(rs)%replicas first if a
// truncated sweep's complete prefix is what you want aggregated.
func AggregateCells(rs []SweepResult, replicas int) ([]CellStats, error) {
	return sweep.AggregateCells(rs, replicas)
}

// Cell/run writers, byte-stable at any worker count.
func WriteRunsJSONL(w io.Writer, rs []SweepResult) error { return sweep.WriteJSONL(w, rs) }
func WriteCellsJSONL(w io.Writer, cs []CellStats) error  { return sweep.WriteCellsJSONL(w, cs) }
func WriteCellsCSV(w io.Writer, cs []CellStats) error    { return sweep.WriteCellsCSV(w, cs) }

// RecordSweepMetrics folds finished sweep results into reg's sweep_*
// metrics.
func RecordSweepMetrics(reg *Registry, rs []SweepResult) { sweep.RecordMetrics(reg, rs) }

// Sweep checkpoint journal: wire one into SweepRunner.Journal and a
// killed sweep resumes from its on-disk prefix.
type SweepJournal = sweep.Journal

// CreateSweepJournal starts a fresh checkpoint journal for a sweep of
// jobs runs.
func CreateSweepJournal(path string, jobs int) (*SweepJournal, error) {
	return sweep.CreateJournal(path, jobs)
}

// OpenSweepJournalResume reopens a journal, tolerating a torn tail, and
// returns the finished prefix for SweepRunner.Resume.
func OpenSweepJournalResume(path string, jobs int) (*SweepJournal, []SweepResult, error) {
	return sweep.OpenJournalResume(path, jobs)
}

// AdaptiveSweepJobs is the journal job-count sentinel for adaptive
// frontier sweeps, whose total run count is not known up front.
const AdaptiveSweepJobs = sweep.AdaptiveJobs

// Typed-axis sweep spaces and adaptive frontier search.
type (
	// SweepAxis is one named dimension of a sweep space — categorical
	// labels, discrete numeric points, or a continuous range (the latter
	// only searchable adaptively).
	SweepAxis = sweep.Axis
	// SweepAxisValue is one coordinate: an axis name with its value.
	SweepAxisValue = sweep.AxisValue
	// SweepPoint is one full coordinate vector of a space.
	SweepPoint = sweep.Point
	// SweepProbe hands a Space.Build everything about one run: the
	// point, the replica index and the derived seed.
	SweepProbe = sweep.Probe
	// SweepSpace declares a sweep over named typed axes; Jobs()
	// enumerates it exhaustively, RunFrontier searches it adaptively.
	SweepSpace = sweep.Space
	// FrontierConfig tunes an adaptive frontier search.
	FrontierConfig = sweep.FrontierConfig
	// FrontierMetric selects which binary outcome defines the frontier.
	FrontierMetric = sweep.FrontierMetric
	// FrontierResult locates one cell-group's critical point.
	FrontierResult = sweep.FrontierResult
	// FrontierReport is a whole adaptive sweep: per-group results plus
	// every probe run in deterministic emission order.
	FrontierReport = sweep.FrontierReport
)

// Frontier metrics.
const (
	// FrontierStable searches the stable/unstable boundary.
	FrontierStable = sweep.MetricStable
	// FrontierRecovered searches the recovered/degraded boundary of
	// faulted runs.
	FrontierRecovered = sweep.MetricRecovered
)

// RunFrontier bisects cfg.Axis to each cell-group's verdict-flip point,
// early-stopping replicas by confidence interval. Output is byte-stable
// at any worker count; wire base.Journal to make the search resumable.
func RunFrontier(ctx context.Context, s *SweepSpace, cfg FrontierConfig, base *SweepRunner) (*FrontierReport, error) {
	return sweep.RunFrontier(ctx, s, cfg, base)
}

// WriteFrontierJSONL writes one JSON line per frontier result.
func WriteFrontierJSONL(w io.Writer, rs []FrontierResult) error {
	return sweep.WriteFrontierJSONL(w, rs)
}

// WilsonInterval is the Wilson score interval for k successes in n
// trials at normal quantile z — the binomial CI behind CellStats'
// share bounds and the adaptive search's early stopping.
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	return stats.WilsonInterval(k, n, z)
}

// HoeffdingInterval is the distribution-free Hoeffding interval for a
// share of k successes in n trials at confidence 1-alpha.
func HoeffdingInterval(k, n int, alpha float64) (lo, hi float64) {
	return stats.HoeffdingInterval(k, n, alpha)
}

// Fault injection (internal/faults): deterministic typed fault schedules
// — link-down windows, Gilbert–Elliott loss bursts, loss ramps, node
// crashes, lying windows, partitions — compiled onto an engine's
// topology/loss/declaration hooks, plus recovery verdicts.
type (
	// FaultSchedule is a typed list of fault events.
	FaultSchedule = faults.Schedule
	// FaultEvent is one fault with its half-open activity window.
	FaultEvent = faults.Event
	// FaultInjector is a schedule compiled against one engine's graph.
	FaultInjector = faults.Injector
	// ChurnConfig parameterizes the stochastic MTBF/MTTR link-churn
	// generator.
	ChurnConfig = faults.GenConfig
	// RecoveryObserver watches a faulted run and issues the post-fault
	// verdict.
	RecoveryObserver = faults.RecoveryObserver
	// Recovery is the observer's full report.
	Recovery = faults.Recovery
)

// Fault kinds.
const (
	FaultLinkDown  = faults.LinkDown
	FaultBurst     = faults.Burst
	FaultRamp      = faults.Ramp
	FaultCrash     = faults.Crash
	FaultLie       = faults.Lie
	FaultPartition = faults.Partition
)

// ParseFaultSchedule parses the text grammar ("down@100-200:e=3"), JSON,
// or an @file indirection to either.
func ParseFaultSchedule(arg string) (FaultSchedule, error) { return faults.Load(arg) }

// FormatFaultSchedule renders the canonical text form of a schedule.
func FormatFaultSchedule(s FaultSchedule) string { return faults.FormatText(s) }

// InjectFaults compiles the schedule against e's graph and installs it;
// all fault randomness derives from seed.
func InjectFaults(e *Engine, s FaultSchedule, seed uint64) (*FaultInjector, error) {
	return faults.Inject(e, s, rng.New(seed))
}

// GenerateChurn samples a link-churn LinkDown schedule (geometric up/down
// phases of mean MTBF/MTTR steps per edge), deterministic in seed.
func GenerateChurn(cfg ChurnConfig, g *Multigraph, seed uint64) (FaultSchedule, error) {
	return faults.Generate(cfg, g, rng.New(seed))
}

// NewRecoveryObserver returns the observer issuing Recovered/Degraded
// verdicts for runs under s; add it to the engine before running.
func NewRecoveryObserver(s FaultSchedule) *RecoveryObserver { return faults.NewRecoveryObserver(s) }

// Analysis machinery used by the examples.

// MaxFlowSolver computes maximum flows; NewMaxFlowSolver returns the
// paper's push-relabel solver.
type MaxFlowSolver = flow.Solver

func NewMaxFlowSolver() MaxFlowSolver { return flow.NewPushRelabel() }

// GomoryHuTree answers all-pairs min-cut queries.
type GomoryHuTree = flow.GomoryHuTree

// GomoryHu builds the Gomory–Hu tree of g.
func GomoryHu(g *Multigraph) *GomoryHuTree { return flow.GomoryHu(g, flow.NewPushRelabel()) }

// Split is the Section V-C decomposition of a network at an interior
// minimum cut into parts B′ and A′.
type Split = cutsplit.Split

// SplitPart is one side of a Split.
type SplitPart = cutsplit.Part

// InductionCase classifies a feasibility analysis into Theorem 2's
// induction cases 1–3; InductionCaseExact additionally reports whether
// the min-cut enumeration (bounded by limit) was exhaustive.
func InductionCase(a *Analysis) int { return cutsplit.InductionCase(a) }
func InductionCaseExact(a *Analysis, limit int) (kase int, exhaustive bool) {
	return cutsplit.InductionCaseExact(a, limit)
}

// FindInteriorCut searches the analysis' minimum cuts for one crossing
// the interior of G (case 3), returning its source-side mask.
func FindInteriorCut(a *Analysis, limit int) (mask []bool, ok bool) {
	return cutsplit.FindInteriorCut(a, limit)
}

// SplitAt decomposes spec at the given source-side mask, granting A′'s
// border nodes the retention constant retentionB (the proof's R_B).
func SplitAt(spec *Spec, sourceSide []bool, retentionB int64) (*Split, error) {
	return cutsplit.At(spec, sourceSide, retentionB)
}

// Exact Markov-chain analysis (small networks).
type (
	// MarkovChain is the enumerated queue process of a small network.
	MarkovChain = chain.Chain
	// ChainOptions bounds the enumeration.
	ChainOptions = chain.Options
	// IIDArrivals is the per-step arrival distribution of the chain.
	IIDArrivals = chain.IIDArrivals
)

// BuildChain enumerates the reachable queue states of spec under LGG.
func BuildChain(spec *Spec, arrivals IIDArrivals, opts ChainOptions) (*MarkovChain, error) {
	return chain.Build(spec, arrivals, opts)
}

// ExactIID is the deterministic arrival distribution (every source
// injects in(v) per step); ThinnedBinomialIID thins it to Binomial(in(v), p).
func ExactIID(spec *Spec) IIDArrivals                      { return chain.Exact(spec) }
func ThinnedBinomialIID(spec *Spec, p float64) IIDArrivals { return chain.ThinnedBinomial(spec, p) }

// BatchMeansCI estimates a mean with a batch-means confidence interval
// (z-quantile half-width) from a correlated series.
func BatchMeansCI(xs []float64, batches int, z float64) (mean, half float64) {
	return stats.BatchMeansCI(xs, batches, z)
}

// Distributed execution.
type (
	// LossModel decides per-transmission packet loss.
	LossModel = core.LossModel
	// DistributedEngine runs LGG as one goroutine per node, exchanging
	// only neighbourhood messages.
	DistributedEngine = distsim.Engine
	// HashLoss is a stateless Bernoulli loss model, safe for concurrent
	// evaluation and identical across central and distributed engines.
	HashLoss = distsim.HashLoss
)

// NewDistributed builds the message-passing engine; Close it when done.
func NewDistributed(spec *Spec, l LossModel) *DistributedEngine { return distsim.New(spec, l) }
