package repro

// One benchmark per experiment of the reproduction index (DESIGN.md §4):
// each BenchXX exercises the code path that regenerates the corresponding
// table, at a fixed workload, so `go test -bench=.` doubles as the
// regeneration driver for timing data in EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/cutsplit"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/interference"
	"repro/internal/loss"
	"repro/internal/lyapunov"
	"repro/internal/packetsim"
	"repro/internal/region"
	"repro/internal/rng"
	"repro/internal/sweep"
)

func benchSpecTheta() *core.Spec {
	return core.NewSpec(graph.ThetaGraph(4, 3)).SetSource(0, 2).SetSink(1, 4)
}

func benchSpecGrid() *core.Spec {
	g := graph.Grid(6, 8)
	s := core.NewSpec(g)
	s.SetSource(0, 1)
	s.SetSource(8, 1)
	s.SetSource(16, 1)
	for r := 0; r < 6; r++ {
		s.SetSink(graph.NodeID(r*8+7), 2)
	}
	return s
}

// BenchmarkE1Step measures the raw cost of one synchronous LGG step
// (inject + plan + transmit + extract) on a 48-node grid.
func BenchmarkE1Step(b *testing.B) {
	e := core.NewEngine(benchSpecGrid(), core.NewLGG())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE2Classify measures a full feasibility analysis (two max
// flows + residual reachability) on a random multigraph.
func BenchmarkE2Classify(b *testing.B) {
	g := graph.RandomMultigraph(60, 160, rng.New(1))
	in := make([]int64, 60)
	out := make([]int64, 60)
	in[0], in[1] = 2, 2
	out[58], out[59] = 3, 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow.Analyze(g, in, out, flow.NewPushRelabel())
	}
}

// BenchmarkE3TieBreak measures LGG planning under each tie rule.
func BenchmarkE3TieBreak(b *testing.B) {
	spec := benchSpecGrid()
	for _, tie := range []core.TieBreak{core.TieEdgeOrder, core.TiePeerOrder, core.TieRandom} {
		b.Run(tie.String(), func(b *testing.B) {
			var l *core.LGG
			if tie == core.TieRandom {
				l = core.NewLGGRandomTies(rng.New(2))
			} else {
				l = &core.LGG{Tie: tie}
			}
			e := core.NewEngine(spec, l)
			for i := 0; i < 50; i++ {
				e.Step() // warm queues so planning has work to do
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkE4StabilityRegion measures a 1000-step stable run at 80% load.
func BenchmarkE4StabilityRegion(b *testing.B) {
	spec := benchSpecTheta()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(spec, core.NewLGG())
		e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: 4, Den: 5}
		e.Run(1000)
	}
}

// BenchmarkE5Divergence measures a 1000-step overloaded (diverging) run —
// queues grow, exercising the large-backlog paths.
func BenchmarkE5Divergence(b *testing.B) {
	spec := benchSpecTheta()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(spec, core.NewLGG())
		e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: 3, Den: 1}
		e.Run(1000)
	}
}

// BenchmarkE6GrowthBound measures stepping with per-step potential deltas
// (the Property 1 instrumentation).
func BenchmarkE6GrowthBound(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), core.NewLGG())
	prev := int64(0)
	var maxD int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := e.Step()
		if d := st.Potential - prev; d > maxD {
			maxD = d
		}
		prev = st.Potential
	}
	_ = maxD
}

// BenchmarkE7DecreaseBound measures the drain dynamics from a preloaded
// high state (Property 2's regime).
func BenchmarkE7DecreaseBound(b *testing.B) {
	spec := benchSpecTheta()
	pre := make([]int64, spec.N())
	for v := range pre {
		pre[v] = 100
	}
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(spec, core.NewLGG())
		e.SetQueues(pre)
		e.Arrivals = benchNoArrivals{}
		e.Run(500)
	}
}

type benchNoArrivals struct{}

func (benchNoArrivals) Name() string                          { return "none" }
func (benchNoArrivals) Injections(int64, *core.Spec, []int64) {}

// BenchmarkE8Generalized measures R-generalized stepping with lying
// declarations and lazy extraction.
func BenchmarkE8Generalized(b *testing.B) {
	spec := benchSpecTheta()
	for v := range spec.R {
		if spec.In[v] > 0 || spec.Out[v] > 0 {
			spec.R[v] = 16
		}
	}
	e := core.NewEngine(spec, core.NewLGG())
	e.Declare = core.DeclareZero{}
	e.Extract = core.ExtractMin{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE9Saturated measures stepping at exactly the capacity frontier.
func BenchmarkE9Saturated(b *testing.B) {
	spec := core.NewSpec(graph.ThetaGraph(4, 3)).SetSource(0, 4).SetSink(1, 4)
	e := core.NewEngine(spec, core.NewLGG())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE10CutSplit measures the Section V-C decomposition plus its
// feasibility checks.
func BenchmarkE10CutSplit(b *testing.B) {
	g := graph.Barbell(5, 3)
	spec := core.NewSpec(g).SetSource(0, 1).SetSink(graph.NodeID(g.NumNodes()-1), 2)
	a := spec.Analyze(flow.NewPushRelabel())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cutsplit.FromAnalysis(spec, a, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Check(flow.NewPushRelabel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Domination measures a dominated run (thinned + lossy).
func BenchmarkE11Domination(b *testing.B) {
	spec := core.NewSpec(graph.Line(7)).SetSource(0, 1).SetSink(6, 1)
	e := core.NewEngine(spec, core.NewLGG())
	e.Arrivals = &arrivals.Thinned{P: 0.8, R: rng.New(3)}
	e.Loss = &loss.Bernoulli{P: 0.2, R: rng.New(4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE12Bursty measures stepping under burst/compensation arrivals.
func BenchmarkE12Bursty(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), core.NewLGG())
	e.Arrivals = &arrivals.Bursty{Period: 16, BurstLen: 4, BurstFactor: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE13Uniform measures stepping under uniform random arrivals.
func BenchmarkE13Uniform(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), core.NewLGG())
	e.Arrivals = &arrivals.Uniform{R: rng.New(5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE14Dynamic measures stepping with a per-step topology mask.
func BenchmarkE14Dynamic(b *testing.B) {
	spec := benchSpecTheta()
	e := core.NewEngine(spec, core.NewLGG())
	victims := make([]graph.EdgeID, spec.G.NumEdges())
	for i := range victims {
		victims[i] = graph.EdgeID(i)
	}
	e.Topology = benchBlink{victims}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

type benchBlink struct{ victims []graph.EdgeID }

func (benchBlink) Name() string { return "bench-blink" }
func (bb benchBlink) EdgeAlive(t int64, e graph.EdgeID) bool {
	return bb.victims[(t/5)%int64(len(bb.victims))] != e
}

// BenchmarkE15Interference measures stepping plus matching scheduling.
func BenchmarkE15Interference(b *testing.B) {
	for _, oracle := range []bool{false, true} {
		name := "greedy"
		if oracle {
			name = "oracle"
		}
		b.Run(name, func(b *testing.B) {
			e := core.NewEngine(benchSpecGrid(), core.NewLGG())
			e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: 1, Den: 3}
			if oracle {
				e.Interference = interference.NewOracle(interference.NodeExclusive)
			} else {
				e.Interference = interference.NewGreedy(interference.NodeExclusive)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkE16RouterDuel measures a step of each router on the same warm
// network state.
func BenchmarkE16RouterDuel(b *testing.B) {
	spec := benchSpecGrid()
	fr, err := baseline.NewFlowRouter(spec, flow.NewPushRelabel())
	if err != nil {
		b.Fatal(err)
	}
	routers := []core.Router{
		core.NewLGG(),
		fr,
		baseline.NewFullGradient(),
		baseline.NewShortestPath(spec),
		baseline.NewRandomForward(rng.New(6)),
	}
	for _, r := range routers {
		b.Run(r.Name(), func(b *testing.B) {
			e := core.NewEngine(spec, r)
			for i := 0; i < 50; i++ {
				e.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkE17Lyapunov measures fully instrumented stepping (trace +
// exact Eq. 1–3 reconstruction) against plain stepping.
func BenchmarkE17Lyapunov(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), core.NewLGG())
	r := lyapunov.NewRecorder(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, terms := r.Step(); terms != nil {
			if err := terms.Check(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE18PacketStep measures the packet-identity engine step.
func BenchmarkE18PacketStep(b *testing.B) {
	pe := packetsim.New(benchSpecGrid(), core.NewLGG())
	pe.KeepDeliveries = false
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.Step()
	}
}

// BenchmarkE19Adversary measures stepping under a window-budget adversary.
func BenchmarkE19Adversary(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), core.NewLGG())
	e.Arrivals = &adversary.WindowBudget{W: 8, Budget: 24,
		Mode: adversary.RandomSplit, R: rng.New(8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE20Drain measures draining a preloaded network to quiescence.
func BenchmarkE20Drain(b *testing.B) {
	spec := benchSpecTheta()
	pre := make([]int64, spec.N())
	for v := range pre {
		pre[v] = 10
	}
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(spec, core.NewLGG())
		e.Arrivals = benchNoArrivals{}
		e.SetQueues(pre)
		for s := 0; s < 200; s++ {
			if st := e.Step(); st.Queued == 0 {
				break
			}
		}
	}
}

// BenchmarkE21SaturatedLine measures long-line saturated stepping (the
// staircase regime with large queues).
func BenchmarkE21SaturatedLine(b *testing.B) {
	spec := core.NewSpec(graph.Line(33)).SetSource(0, 1).SetSink(32, 1)
	e := core.NewEngine(spec, core.NewLGG())
	e.Run(4000) // reach the steady staircase first
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE22Sleepy measures duty-cycled stepping (hash coin per node).
func BenchmarkE22Sleepy(b *testing.B) {
	e := core.NewEngine(benchSpecTheta(), &baseline.Sleepy{Inner: core.NewLGG(), P: 0.6, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkP3Distributed measures one barrier-synchronized round of the
// message-passing engine.
func BenchmarkP3Distributed(b *testing.B) {
	de := distsim.New(benchSpecTheta(), nil)
	defer de.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		de.Step()
	}
}

// BenchmarkE23Critical measures one full bisection for LGG's frontier.
func BenchmarkE23Critical(b *testing.B) {
	spec := core.NewSpec(graph.ThetaGraph(3, 2)).SetSource(0, 3).SetSink(1, 3)
	for i := 0; i < b.N; i++ {
		p := &region.Prober{
			Spec:       spec,
			Router:     func(uint64) core.Router { return core.NewLGG() },
			Seeds:      []uint64{1, 2},
			Horizon:    600,
			Resolution: 8,
		}
		p.Critical()
	}
}

// BenchmarkE24ExactChain measures enumerating + solving the exact Markov
// chain of a small instance.
func BenchmarkE24ExactChain(b *testing.B) {
	spec := core.NewSpec(graph.ThetaGraph(2, 2)).SetSource(0, 2).SetSink(1, 2)
	dist := chain.ThinnedBinomial(spec, 0.6)
	for i := 0; i < b.N; i++ {
		c, err := chain.Build(spec, dist, chain.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Stationary(100000, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE25GomoryHu measures building the all-pairs min-cut tree.
func BenchmarkE25GomoryHu(b *testing.B) {
	g := graph.Grid(4, 6)
	for i := 0; i < b.N; i++ {
		flow.GomoryHu(g, flow.NewPushRelabel())
	}
}

// BenchmarkE26Threshold measures the damped-gradient LGG variant.
func BenchmarkE26Threshold(b *testing.B) {
	e := core.NewEngine(benchSpecGrid(), &core.LGG{MinGradient: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkE27DualRole measures stepping a fully dual-role ring (every
// node both injects and extracts, Fig. 4).
func BenchmarkE27DualRole(b *testing.B) {
	spec := core.NewSpec(graph.Cycle(12))
	for v := 0; v < 12; v++ {
		spec.SetSource(graph.NodeID(v), 1)
		spec.SetSink(graph.NodeID(v), 1)
	}
	e := core.NewEngine(spec, core.NewLGG())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkP1Scaling measures the per-step cost across grid sizes.
func BenchmarkP1Scaling(b *testing.B) {
	for _, side := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("grid%dx%d", side, side), func(b *testing.B) {
			g := graph.Grid(side, side)
			spec := core.NewSpec(g)
			for r := 0; r < side; r++ {
				spec.SetSource(graph.NodeID(r*side), 1)
				spec.SetSink(graph.NodeID(r*side+side-1), 2)
			}
			e := core.NewEngine(spec, core.NewLGG())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkP2MaxFlow compares the three solvers on a unit-capacity G*.
func BenchmarkP2MaxFlow(b *testing.B) {
	g := graph.RandomMultigraph(120, 400, rng.New(7))
	in := make([]int64, 120)
	out := make([]int64, 120)
	in[0], in[1] = 4, 4
	out[118], out[119] = 4, 4
	ext := flow.Extend(g, in, out, nil)
	for _, s := range flow.Solvers() {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.MaxFlow(ext.P)
			}
		})
	}
}

// BenchmarkSweepStability runs the E4 stability grid through the sweep
// runner at several pool sizes. The reported runs/s metric should scale
// near-linearly with workers on multi-core hardware (CI asserts nothing
// here — compare the b.Run lines by eye or with benchstat).
func BenchmarkSweepStability(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Seeds: 4, Horizon: 800, Quick: true}
	jobs := experiments.StabilityGrid(cfg)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &sweep.Runner{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(jobs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// BenchmarkSweepDuel does the same on the E16 router duel (heavier cells:
// five routers, two loads, three networks).
func BenchmarkSweepDuel(b *testing.B) {
	cfg := experiments.Config{Seed: 1, Seeds: 2, Horizon: 500, Quick: true}
	jobs := experiments.RouterDuelGrid(cfg)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := &sweep.Runner{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(jobs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
