package repro

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := Theta(3, 2)
	spec := NewSpec(g).SetSource(0, 2).SetSink(1, 3)
	if got := Classify(spec); got != Unsaturated {
		t.Fatalf("Classify = %v", got)
	}
	e := NewEngine(spec, NewLGG())
	res := Run(e, Options{Horizon: 500})
	if res.Diagnosis.Verdict != StableVerdict {
		t.Fatalf("verdict = %v", res.Diagnosis.Verdict)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if Line(4).NumNodes() != 4 || Cycle(5).NumEdges() != 5 {
		t.Fatal("line/cycle")
	}
	if Grid(3, 4).NumNodes() != 12 {
		t.Fatal("grid")
	}
	if NewGraph(7).NumNodes() != 7 {
		t.Fatal("new graph")
	}
	g := Random(10, 15, 42)
	if g.NumNodes() != 10 || g.NumEdges() != 15 {
		t.Fatal("random")
	}
	// determinism
	h := Random(10, 15, 42)
	for i, e := range g.Edges() {
		if h.Edges()[i] != e {
			t.Fatal("Random not deterministic")
		}
	}
}

func TestFacadeAnalyzeAndBounds(t *testing.T) {
	spec := NewSpec(Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	a := Analyze(spec)
	if a.FStar != 3 || a.ArrivalRate != 2 {
		t.Fatalf("analysis: f*=%d rate=%d", a.FStar, a.ArrivalRate)
	}
	b, err := StabilityBounds(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.Eps <= 0 || b.StateBound <= 0 {
		t.Fatalf("bounds = %+v", b)
	}
}

func TestFacadeRouters(t *testing.T) {
	spec := NewSpec(Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	fr, err := FlowRouter(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Router{fr, ShortestPathRouter(spec), RandomRouter(1), NewLGG()} {
		e := NewEngine(spec, r)
		res := Run(e, Options{Horizon: 300})
		if res.Totals.Violations != 0 {
			t.Fatalf("%s: violations", r.Name())
		}
	}
}

func TestFacadeModifiers(t *testing.T) {
	spec := NewSpec(Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	e := NewEngine(spec, NewLGG())
	WithBernoulliLoss(e, 0.2, 3)
	WithThinnedArrivals(e, 0.8, 4)
	res := Run(e, Options{Horizon: 400})
	if res.Diagnosis.Verdict == DivergingVerdict {
		t.Fatal("lossy thinned run diverged on an unsaturated network")
	}
	e2 := NewEngine(spec, NewLGG())
	WithLoad(e2, 1, 2)
	r2 := Run(e2, Options{Horizon: 200})
	if r2.Totals.Injected != 200 { // 2/step × 1/2 × 200
		t.Fatalf("scaled injection = %d, want 200", r2.Totals.Injected)
	}
	e3 := NewEngine(spec, NewLGG())
	WithNodeExclusiveInterference(e3, true)
	WithLoad(e3, 1, 2)
	r3 := Run(e3, Options{Horizon: 300})
	if r3.Totals.Violations != 0 {
		t.Fatal("interference run had violations")
	}
}

func TestFacadePotential(t *testing.T) {
	if Potential([]int64{3, 4}) != 25 {
		t.Fatal("potential")
	}
}

func TestFacadePacketEngine(t *testing.T) {
	spec := NewSpec(Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	pe := NewPacketEngine(spec, NewLGG())
	pe.Run(500)
	if pe.Delivered == 0 {
		t.Fatal("packet engine delivered nothing")
	}
	if pe.MeanLatency() <= 0 {
		t.Fatal("latency accounting missing")
	}
	if pe.Injected != pe.Delivered+pe.Lost+pe.Stored() {
		t.Fatal("conservation broken")
	}
}
