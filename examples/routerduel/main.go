// Routerduel: the paper motivates LGG as a *localized* protocol — every
// node decides from its neighbours' queue lengths alone — yet Theorem 1
// says its stability region matches that of the clairvoyant optimum (a
// centralized router that knows a maximum flow). This example sweeps the
// load and races LGG against the flow-path router, a hot-potato
// shortest-path router, and blind random forwarding.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A theta network with a decoy: 3 disjoint 3-hop paths (capacity 3),
	// demand dialed from 30% to 100% of f*.
	g := repro.Theta(3, 3)
	spec := repro.NewSpec(g).SetSource(0, 3).SetSink(1, 3)
	a := repro.Analyze(spec)
	fmt.Printf("network %s — f* = %d\n\n", spec, a.FStar)

	flowRouter, err := repro.FlowRouter(spec)
	if err != nil {
		log.Fatal(err)
	}
	routers := []struct {
		name string
		mk   func() repro.Router
	}{
		{"lgg (localized)", func() repro.Router { return repro.NewLGG() }},
		{"flow-paths (clairvoyant)", func() repro.Router { return flowRouter }},
		{"shortest-path", func() repro.Router { return repro.ShortestPathRouter(spec) }},
		{"random-forward", func() repro.Router { return repro.RandomRouter(77) }},
	}
	loads := []struct {
		name     string
		num, den int64
	}{{"0.33", 1, 3}, {"0.67", 2, 3}, {"1.00", 1, 1}}

	const horizon = 10000
	fmt.Printf("%-26s %-6s %-12s %-12s %-10s\n", "router", "load", "verdict", "mean-N", "peak-N")
	for _, rc := range routers {
		for _, ld := range loads {
			e := repro.NewEngine(spec, rc.mk())
			repro.WithLoad(e, ld.num, ld.den)
			res := repro.Run(e, repro.Options{Horizon: horizon})
			meanN := float64(0)
			for _, q := range res.Series.Queued[len(res.Series.Queued)/2:] {
				meanN += q
			}
			meanN /= float64(len(res.Series.Queued) - len(res.Series.Queued)/2)
			fmt.Printf("%-26s %-6s %-12v %-12.1f %-10d\n", rc.name, ld.name,
				res.Diagnosis.Verdict, meanN, res.Totals.PeakQueued)
		}
		fmt.Println()
	}
	fmt.Println("Shape to look for: the localized LGG is stable across the entire feasible")
	fmt.Println("region, matching the clairvoyant flow router's verdict with only a modest")
	fmt.Println("constant-factor backlog; random forwarding pays a growing backlog as load")
	fmt.Println("rises (on larger asymmetric networks — see experiment E16 — it diverges")
	fmt.Println("well before f*, while LGG does not).")
}
