// Frontier: where exactly does LGG stop being stable? Theorem 1 says an
// unsaturated network (arrival rate strictly below the max flow f*) is
// stable, so the critical load should sit at ρ = 1.0 ×f*. Instead of
// sweeping a dense load grid exhaustively, this example declares a
// continuous load axis and lets the adaptive frontier search bisect its
// way to the stable/diverging boundary per network, early-stopping seed
// replicas as soon as a Wilson confidence interval decides the side.
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	// Two networks with different shapes but the same predicted
	// frontier: the theta graph (3 disjoint 2-hop paths, f* = 3) and a
	// 3x4 grid. Demand is set below f*, so load ρ is in units of the
	// critical rate.
	type network struct {
		name string
		spec *repro.Spec
	}
	nets := []network{
		{"theta(3,2)", repro.NewSpec(repro.Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)},
		{"grid(3x4)", repro.NewSpec(repro.Grid(3, 4)).SetSource(0, 1).SetSink(11, 2)},
	}
	names := make([]string, len(nets))
	type loadInfo struct{ fstar, rate int64 }
	infos := make([]loadInfo, len(nets))
	for i, n := range nets {
		names[i] = n.name
		a := repro.Analyze(n.spec)
		infos[i] = loadInfo{fstar: a.FStar, rate: n.spec.ArrivalRate()}
		fmt.Printf("%-12s %v, f*=%d, nominal rate=%d\n",
			n.name, a.Feasibility, a.FStar, n.spec.ArrivalRate())
	}

	// The space: a categorical network axis crossed with a continuous
	// load axis. A continuous axis has no grid points — it cannot be
	// enumerated exhaustively, only searched adaptively.
	space := &repro.SweepSpace{
		Name:     "frontier-example",
		BaseSeed: 7,
		Replicas: 8,
		Horizon:  3000,
		Axes: []repro.SweepAxis{
			{Name: "network", Labels: names},
			{Name: "rho", Unit: "×f*", Min: 0.5, Max: 1.5},
		},
		Build: func(p repro.SweepProbe) *repro.Engine {
			info := infos[int(p.Point[0].Value)]
			rho, _ := p.Point.Value("rho")
			e := repro.NewEngine(nets[int(p.Point[0].Value)].spec, repro.NewLGG())
			// Scale arrivals to rho×f*: an exact rational keeps the
			// long-run rate precise even at the frontier itself.
			num := info.fstar * int64(math.Round(rho*1e6))
			den := info.rate * 1e6
			return repro.WithLoad(e, num, den)
		},
	}

	cfg := repro.FrontierConfig{
		Axis:     "rho",
		Tol:      0.01, // locate the flip point to ±0.01 ×f*
		MinSeeds: 4,
		MaxSeeds: 16,
	}
	report, err := repro.RunFrontier(context.Background(), space, cfg, &repro.SweepRunner{Workers: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frontier search failed:", err)
		os.Exit(1)
	}

	fmt.Println()
	for _, r := range report.Results {
		if !r.Found {
			fmt.Printf("%-12s no flip in range (all %s)\n", r.Coords[0].Label, r.Side)
			continue
		}
		fmt.Printf("%-12s critical ρ ≈ %.4f ×f* (bracket [%.4f, %.4f], %d probes, %d runs)\n",
			r.Coords[0].Label, r.Critical, r.BracketLo, r.BracketHi, r.Probes, r.Runs)
		fmt.Printf("%-12s   below: stable share %.2f, CI [%.2f, %.2f]\n",
			"", r.ShareAtLo, r.CIAtLo[0], r.CIAtLo[1])
		fmt.Printf("%-12s   above: stable share %.2f, CI [%.2f, %.2f]\n",
			"", r.ShareAtHi, r.CIAtHi[0], r.CIAtHi[1])
	}
	fmt.Printf("\ntotal: %d runs across %d groups — an exhaustive sweep of the same\n",
		report.TotalRuns, len(report.Results))
	fmt.Println("resolution (101 grid points × 16 seeds × 2 networks = 3232 runs) costs ~2 orders more.")
}
