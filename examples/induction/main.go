// Induction: walks the paper's Section V proof structure on a concrete
// network. Theorem 2's induction on |V| classifies every feasible
// R-generalized network into three cases — (1) unsaturated, (2) saturated
// only at the virtual sink, (3) an interior minimum cut — and in case 3
// splits the network at that cut into B′ (border nodes become generalized
// sources) and A′ (border nodes become R_B-generalized destinations),
// recursing on both. This example performs that recursion with real
// max-flow computations, checks each claim the proof makes (feasibility
// of the parts, D″ ≠ ∅), and confirms stability of every part by
// simulation.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	// A barbell: two K4 cliques joined by a 4-edge path. The unit bridge
	// is an interior minimum cut, so the induction has real work to do.
	spec := barbell()
	fmt.Printf("network %s — %v\n\n", spec, repro.Classify(spec))
	walk(spec, 0)
	fmt.Println("\nEvery part of the recursion was feasible and stable —")
	fmt.Println("the structure Theorem 2's induction relies on, verified concretely.")
}

func barbell() *repro.Spec {
	s := repro.NewSpec(mkBarbell())
	s.SetSource(0, 1)
	s.SetSink(repro.NodeID(s.N()-1), 2)
	return s
}

func mkBarbell() *repro.Multigraph {
	g := repro.NewGraph(11) // K4 + 3 path interior nodes... built by hand:
	// left clique 0-3
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(repro.NodeID(i), repro.NodeID(j))
		}
	}
	// right clique 7-10
	for i := 7; i < 11; i++ {
		for j := i + 1; j < 11; j++ {
			g.AddEdge(repro.NodeID(i), repro.NodeID(j))
		}
	}
	// bridge 3-4-5-6-7
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	return g
}

func walk(spec *repro.Spec, depth int) {
	ind := strings.Repeat("  ", depth)
	if spec.N() == 1 {
		fmt.Printf("%s|V| = 1: trivially stable (induction floor)\n", ind)
		return
	}
	a := repro.Analyze(spec)
	if a.Feasibility == repro.Infeasible {
		fmt.Printf("%sINFEASIBLE — the induction premise is violated\n", ind)
		os.Exit(1)
	}
	kase, _ := repro.InductionCaseExact(a, 256)
	verdict := simulate(spec)
	fmt.Printf("%s%s  case %d  (rate %d, f* %d)  LGG: %s\n",
		ind, spec, kase, a.ArrivalRate, a.FStar, verdict)
	if kase != 3 {
		base := map[int]string{1: "unsaturated — Lemma 2 applies", 2: "saturated at d* — Section V-B applies"}
		fmt.Printf("%s└ base case: %s\n", ind, base[kase])
		return
	}
	mask, ok := repro.FindInteriorCut(a, 256)
	if !ok {
		fmt.Printf("%scase 3 without an interior cut?!\n", ind)
		os.Exit(1)
	}
	// R_B: the simulated bound on B's backlog grants A′'s border nodes
	// their retention constant (the proof's R_B).
	s, err := repro.SplitAt(spec, mask, 16)
	if err != nil {
		fmt.Printf("%ssplit failed: %v\n", ind, err)
		os.Exit(1)
	}
	if _, _, err := s.Check(repro.NewMaxFlowSolver()); err != nil {
		fmt.Printf("%ssplit check failed: %v\n", ind, err)
		os.Exit(1)
	}
	fmt.Printf("%s└ interior cut (%d edges): recurse on B′ (n=%d) and A′ (n=%d); D″≠∅ ✓\n",
		ind, len(s.CutEdges), s.B.Spec.N(), s.A.Spec.N())
	walk(s.B.Spec, depth+1)
	walk(s.A.Spec, depth+1)
}

func simulate(spec *repro.Spec) string {
	e := repro.NewEngine(spec, repro.NewLGG())
	r := repro.Run(e, repro.Options{Horizon: 4000})
	return fmt.Sprintf("%v (peak backlog %d)", r.Diagnosis.Verdict, r.Totals.PeakQueued)
}
