// Dynamicnet: Conjecture 4. The topology changes over time — here the
// four disjoint paths of a theta network take turns going dark — while
// the live sub-network always keeps enough capacity for the demand. The
// conjecture says LGG should remain stable; a control run where the only
// edge of a saturated network blinks (halving its capacity below the
// demand) diverges.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// theta(4,3): nodes 0 (source) and 1 (sink) joined by 4 paths of 3
	// edges. Edges of path p are ids [3p, 3p+3). Demand 2 < f* = 4, so
	// losing any single path leaves capacity 3 ≥ 2.
	g := repro.Theta(4, 3)
	spec := repro.NewSpec(g).SetSource(0, 2).SetSink(1, 4)
	fmt.Printf("network %s — static classification: %v\n", spec, repro.Classify(spec))

	const horizon = 15000

	// Rotate a blackout across the 12 path edges, one at a time.
	victims := make([]repro.EdgeID, g.NumEdges())
	for i := range victims {
		victims[i] = repro.EdgeID(i)
	}
	e := repro.NewEngine(spec, repro.NewLGG())
	repro.WithBlinkingEdges(e, victims, 9)
	res := repro.Run(e, repro.Options{Horizon: horizon})
	fmt.Printf("rotating single-edge blackout: verdict=%v peak-N=%d delivered=%d/%d\n",
		res.Diagnosis.Verdict, res.Totals.PeakQueued,
		res.Totals.Extracted, res.Totals.Injected)

	// Bursty arrivals on top of the blinking topology (Conjectures 2+4
	// combined): bursts of 3×in with quiet compensation.
	e2 := repro.NewEngine(spec, repro.NewLGG())
	repro.WithBlinkingEdges(e2, victims, 9)
	repro.WithBurstyArrivals(e2, 12, 4, 3) // average = in(v)
	res2 := repro.Run(e2, repro.Options{Horizon: horizon})
	fmt.Printf("…plus 3× bursts w/ compensation: verdict=%v peak-N=%d\n",
		res2.Diagnosis.Verdict, res2.Totals.PeakQueued)

	// Control: a saturated 2-node line whose only edge is down every
	// other period — average capacity ½ < demand 1 ⇒ divergence.
	line := repro.NewSpec(repro.Line(2)).SetSource(0, 1).SetSink(1, 1)
	e3 := repro.NewEngine(line, repro.NewLGG())
	// Rotate between the real edge and a phantom id: edge 0 is down every
	// other period, halving the line's capacity.
	const phantom = repro.EdgeID(1 << 30)
	repro.WithBlinkingEdges(e3, []repro.EdgeID{0, phantom}, 1)
	res3 := repro.Run(e3, repro.Options{Horizon: horizon})
	fmt.Printf("control (capacity halved below demand): verdict=%v stored=%d\n",
		res3.Diagnosis.Verdict, res3.Totals.FinalQueued)
}
