// Lossy: Conjecture 1 in action. The paper proves stability of saturated
// networks only when sources inject exactly in(s) and nothing is lost;
// Conjecture 1 claims that injecting *less* and losing packets can only
// help. This example couples the proved reference run with progressively
// dominated runs and compares their backlogs.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A saturated network: a 6-hop line whose single path is exactly as
	// fast as the source (in = 1 = every interior cut).
	g := repro.Line(7)
	spec := repro.NewSpec(g).SetSource(0, 1).SetSink(6, 1)
	fmt.Printf("network %s — classification: %v\n", spec, repro.Classify(spec))
	fmt.Println("reference = exact arrivals, no loss (the case Section V-B proves)")
	fmt.Println()

	const horizon = 20000
	type variant struct {
		name  string
		build func() *repro.Engine
	}
	variants := []variant{
		{"reference (exact, lossless)", func() *repro.Engine {
			return repro.NewEngine(spec, repro.NewLGG())
		}},
		{"thinned arrivals p=0.8", func() *repro.Engine {
			return repro.WithThinnedArrivals(repro.NewEngine(spec, repro.NewLGG()), 0.8, 11)
		}},
		{"bernoulli loss p=0.2", func() *repro.Engine {
			return repro.WithBernoulliLoss(repro.NewEngine(spec, repro.NewLGG()), 0.2, 12)
		}},
		{"thinned p=0.7 + loss p=0.3", func() *repro.Engine {
			e := repro.NewEngine(spec, repro.NewLGG())
			repro.WithThinnedArrivals(e, 0.7, 13)
			return repro.WithBernoulliLoss(e, 0.3, 14)
		}},
	}

	fmt.Printf("%-30s %-12s %-10s %-10s %-10s\n", "variant", "verdict", "peak-P", "stored", "delivered")
	var refPeak int64
	for i, v := range variants {
		res := repro.Run(v.build(), repro.Options{Horizon: horizon})
		if i == 0 {
			refPeak = res.Totals.PeakPotential
		}
		fmt.Printf("%-30s %-12v %-10d %-10d %-10d\n", v.name,
			res.Diagnosis.Verdict, res.Totals.PeakPotential,
			res.Totals.FinalQueued, res.Totals.Extracted)
		if i > 0 && res.Diagnosis.Verdict == repro.DivergingVerdict {
			fmt.Println("!!! counterexample to Conjecture 1 — a dominated run diverged")
		}
	}
	fmt.Println()
	fmt.Printf("Conjecture 1 survived: every dominated run stayed bounded (reference peak P = %d).\n", refPeak)
	fmt.Println()
	fmt.Println("Side observation: stability ≠ delivery. Under heavy thinning the queues are")
	fmt.Println("so sparse that isolated packets wander on flat gradients (deterministic ties")
	fmt.Println("even walk them backwards) and losses reap them before they reach the sink —")
	fmt.Println("the backlog stays bounded, exactly and only what Definition 2 promises.")
}
