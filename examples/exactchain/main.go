// Exactchain: stability as a theorem about THIS instance. For networks
// small enough to enumerate, the queue process under LGG with i.i.d.
// arrivals is a finite Markov chain: exhausting its reachable states IS a
// proof that the backlog stays bounded (Definition 2, by exhaustion), and
// the stationary distribution gives the exact steady-state backlog the
// simulator can only estimate. This example runs both and compares,
// then shows the structural bottlenecks via a Gomory–Hu tree.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// theta(2,3): two disjoint 3-hop paths, source injects Binomial(2, .7).
	g := repro.Theta(2, 3)
	spec := repro.NewSpec(g).SetSource(0, 2).SetSink(1, 2)
	const thin = 0.7
	fmt.Printf("network %s, arrivals Binomial(2, %.1f) — %v\n\n",
		spec, thin, repro.Classify(spec))

	// Exact analysis.
	c, err := repro.BuildChain(spec, repro.ThinnedBinomialIID(spec, thin),
		repro.ChainOptions{CapPerNode: 64})
	if err != nil {
		log.Fatalf("enumeration: %v", err)
	}
	pi, err := c.Stationary(500000, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact: %d reachable states — boundedness PROVED by exhaustion\n", c.NumStates())
	fmt.Printf("exact: max possible backlog %d, stationary E[N] = %.5f\n",
		c.MaxBacklog(), c.ExpectedBacklog(pi))
	tail := c.BacklogTail(pi)
	fmt.Print("exact: P[N≥k] ")
	for k, p := range tail {
		fmt.Printf("%d:%.4f ", k, p)
	}
	fmt.Println()

	// Simulation with a batch-means confidence interval.
	e := repro.NewEngine(spec, repro.NewLGG())
	repro.WithThinnedArrivals(e, thin, 7)
	res := repro.Run(e, repro.Options{Horizon: 300000, Stride: 4})
	mean, half := repro.BatchMeansCI(res.Series.Queued[len(res.Series.Queued)/4:], 32, 1.96)
	fmt.Printf("\nsimulated: E[N] = %.5f ± %.5f (95%% batch-means CI, 300k steps)\n", mean, half)
	exact := c.ExpectedBacklog(pi)
	if exact >= mean-half && exact <= mean+half {
		fmt.Println("the exact value falls inside the simulator's interval ✓")
	} else {
		fmt.Println("!!! exact value outside the CI — investigate")
	}

	// Structural bottlenecks.
	tree := repro.GomoryHu(spec.G)
	fmt.Println("\nGomory–Hu bottlenecks (weakest node pairs):")
	for _, p := range tree.WeakestPairs(3) {
		fmt.Printf("  min-cut(%d, %d) = %d\n", p.U, p.V, p.Cut)
	}
	fmt.Printf("terminal capacity: min-cut(0, 1) = %d = f* of this placement\n",
		tree.MinCut(0, 1))
}
