// Distributed: the paper's protocol is "distributed … and localized
// since nodes only need information about their neighborhood". This
// example runs LGG twice on the same network — once in the central
// simulator, once as real message-passing goroutines (one per node,
// queue lengths learned only from announcement messages) — and shows the
// two executions agree on every queue at every round.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	g := repro.Grid(4, 5)
	spec := repro.NewSpec(g)
	spec.SetSource(0, 1)
	spec.SetSource(5, 1)
	for r := 0; r < 4; r++ {
		spec.SetSink(repro.NodeID(r*5+4), 2)
	}
	fmt.Printf("network %s — %v\n", spec, repro.Classify(spec))

	const rounds = 2000
	lossModel := repro.HashLoss{P: 0.1, Seed: 42}

	// Central simulation.
	central := repro.NewEngine(spec, repro.NewLGG())
	central.Loss = lossModel

	// Message-passing execution: 20 goroutines, channels, barriers.
	dist := repro.NewDistributed(spec, lossModel)
	defer dist.Close()

	mismatches := 0
	for round := 0; round < rounds; round++ {
		dq := dist.Step()
		central.Step()
		for v := range dq {
			if dq[v] != central.Q[v] {
				mismatches++
				if mismatches <= 3 {
					fmt.Printf("  round %d node %d: distributed=%d central=%d\n",
						round, v, dq[v], central.Q[v])
				}
			}
		}
	}
	st := dist.Statistics()
	fmt.Printf("rounds:     %d (× %d nodes as goroutines)\n", rounds, spec.N())
	fmt.Printf("injected:   %d   delivered: %d   lost: %d\n",
		st.Injected, st.Extracted, st.Lost)
	fmt.Printf("mismatches: %d\n", mismatches)
	if mismatches > 0 {
		fmt.Println("!!! the distributed execution departed from the model")
		os.Exit(1)
	}
	fmt.Println("The message-passing execution matched the central simulation")
	fmt.Println("queue-for-queue at every round: LGG really is a local protocol.")
}
