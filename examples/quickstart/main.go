// Quickstart: build a small S-D-network, classify it, compute the
// Lemma 1 constants, run the LGG protocol and report stability.
//
// This is Figure 1 of the paper brought to life: a multigraph with a
// source injecting packets, interior nodes running the local greedy
// gradient rule, and a sink draining the flow.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three disjoint 2-hop paths between a source (node 0) and a sink
	// (node 1): capacity f* = 3.
	g := repro.Theta(3, 2)
	spec := repro.NewSpec(g).
		SetSource(0, 2). // in(s) = 2 packets per step
		SetSink(1, 3)    // out(d) = 3 packets per step

	// Feasibility analysis (Section II-B): with rate 2 < f* = 3 and slack
	// in every cut, the network is unsaturated — the regime where the
	// paper proves stability unconditionally (Lemma 1).
	a := repro.Analyze(spec)
	fmt.Printf("network %s\n", spec)
	fmt.Printf("classification: %v (arrival rate %d, max flow %d, f* %d)\n",
		a.Feasibility, a.ArrivalRate, a.MaxFlow.Value, a.FStar)

	b, err := repro.StabilityBounds(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 1 constants: ε=%.3f, 5nΔ²=%.0f, Y=%.3g, state bound=%.3g\n",
		b.Eps, b.GrowthBound, b.Y, b.StateBound)

	// Run LGG for 10000 synchronous steps.
	eng := repro.NewEngine(spec, repro.NewLGG())
	res := repro.Run(eng, repro.Options{Horizon: 10000})

	fmt.Printf("after %d steps: injected=%d delivered=%d stored=%d\n",
		res.Totals.Steps, res.Totals.Injected, res.Totals.Extracted,
		res.Totals.FinalQueued)
	fmt.Printf("peak network state P_t = %d (bound %.3g)\n",
		res.Totals.PeakPotential, b.StateBound)
	fmt.Printf("verdict: %v\n", res.Diagnosis.Verdict)

	if float64(res.Totals.PeakPotential) > b.StateBound {
		log.Fatal("Lemma 1 bound violated — this should be impossible")
	}
	fmt.Println("Lemma 1 holds: the network state stayed bounded. ✓")
}
