// Wireless: Conjecture 5. Under node-exclusive spectrum sharing (two
// links sharing an endpoint cannot transmit together — the model of the
// paper's reference [2]), each step's transmission set must be a
// matching. This example runs LGG on a grid under a greedy-maximal and a
// gradient-weighted ("oracle") scheduler at increasing load, showing the
// interference-constrained stability region.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// 4×6 grid: two sources on the left edge, sinks on the right column.
	g := repro.Grid(4, 6)
	spec := repro.NewSpec(g)
	spec.SetSource(0, 1)     // row 0, col 0
	spec.SetSource(6, 1)     // row 1, col 0
	for r := 0; r < 4; r++ { // right column drains
		spec.SetSink(repro.NodeID(r*6+5), 3)
	}
	fmt.Printf("network %s — classification without interference: %v\n",
		spec, repro.Classify(spec))
	fmt.Println()

	const horizon = 8000
	loads := []struct {
		name     string
		num, den int64
	}{{"load 1/3", 1, 3}, {"load 2/3", 2, 3}, {"load 1", 1, 1}}

	fmt.Printf("%-10s %-22s %-12s %-10s %-10s\n", "load", "scheduler", "verdict", "peak-N", "delivered")
	for _, ld := range loads {
		for _, oracle := range []struct {
			name string
			set  func(e *repro.Engine)
		}{
			{"none (no interference)", func(e *repro.Engine) {}},
			{"greedy matching", func(e *repro.Engine) { repro.WithNodeExclusiveInterference(e, false) }},
			{"oracle matching", func(e *repro.Engine) { repro.WithNodeExclusiveInterference(e, true) }},
		} {
			e := repro.NewEngine(spec, repro.NewLGG())
			repro.WithLoad(e, ld.num, ld.den)
			oracle.set(e)
			res := repro.Run(e, repro.Options{Horizon: horizon})
			fmt.Printf("%-10s %-22s %-12v %-10d %-10d\n", ld.name, oracle.name,
				res.Diagnosis.Verdict, res.Totals.PeakQueued, res.Totals.Extracted)
		}
	}
	fmt.Println()
	fmt.Println("With a compatible E_t scheduled every step, LGG stays stable at")
	fmt.Println("matching-feasible loads — the behaviour Conjecture 5 postulates.")
}
