// Package repro is the public API of the reproduction of "Stability of a
// localized and greedy routing algorithm" (Caillouet, Huc, Nisse,
// Pérennes, Rivano; IPPS 2010).
//
// It re-exports the building blocks a user needs to assemble and study
// S-D-networks running the LGG protocol:
//
//	g := repro.Theta(3, 2)                      // 3 disjoint 2-hop paths
//	spec := repro.NewSpec(g).SetSource(0, 2).SetSink(1, 3)
//	fmt.Println(repro.Classify(spec))           // unsaturated
//	eng := repro.NewEngine(spec, repro.NewLGG())
//	res := repro.Run(eng, repro.Options{Horizon: 5000})
//	fmt.Println(res.Diagnosis.Verdict)          // stable
//
// The deeper machinery (max-flow solvers, cut splitting, experiment
// harness) lives in the internal packages and is reachable through the
// helpers below; the cmd/ tools and examples/ directory show idiomatic
// use.
package repro

import (
	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/interference"
	"repro/internal/loss"
	"repro/internal/packetsim"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Graph types.
type (
	// Multigraph is an undirected multigraph (parallel edges allowed).
	Multigraph = graph.Multigraph
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// EdgeID identifies an edge.
	EdgeID = graph.EdgeID
)

// Model types.
type (
	// Spec describes an (R-generalized) S-D-network.
	Spec = core.Spec
	// Engine executes the synchronous step semantics.
	Engine = core.Engine
	// LGG is the Local Greedy Gradient protocol (Algorithm 1).
	LGG = core.LGG
	// Router plans the transmission set of a step.
	Router = core.Router
	// Snapshot is the per-step observable state.
	Snapshot = core.Snapshot
	// Send is one planned transmission.
	Send = core.Send
	// StepStats summarizes one step.
	StepStats = core.StepStats
	// Totals accumulates run statistics.
	Totals = core.Totals
	// Bounds carries Lemma 1's explicit constants.
	Bounds = core.Bounds
)

// Simulation types.
type (
	// Options tunes a Run.
	Options = sim.Options
	// Result is a finished run with series and verdict.
	Result = sim.Result
	// Verdict classifies boundedness.
	Verdict = sim.Verdict
	// Feasibility classifies a network (infeasible/saturated/unsaturated).
	Feasibility = flow.Feasibility
	// Analysis is the full feasibility analysis of a network.
	Analysis = flow.Analysis
)

// Verdicts and feasibility classes.
const (
	StableVerdict       = sim.Stable
	DivergingVerdict    = sim.Diverging
	InconclusiveVerdict = sim.Inconclusive

	Infeasible  = flow.Infeasible
	Saturated   = flow.Saturated
	Unsaturated = flow.Unsaturated
)

// NewGraph returns an empty multigraph on n nodes.
func NewGraph(n int) *Multigraph { return graph.New(n) }

// Line returns the path graph on n nodes.
func Line(n int) *Multigraph { return graph.Line(n) }

// Cycle returns the n-cycle.
func Cycle(n int) *Multigraph { return graph.Cycle(n) }

// Grid returns the rows×cols grid; node (r,c) has id r·cols+c.
func Grid(rows, cols int) *Multigraph { return graph.Grid(rows, cols) }

// Theta returns two terminals (nodes 0 and 1) joined by `paths`
// internally disjoint paths of the given length.
func Theta(paths, length int) *Multigraph { return graph.ThetaGraph(paths, length) }

// Random returns a connected random multigraph with n nodes and m edges,
// deterministic in seed.
func Random(n, m int, seed uint64) *Multigraph {
	return graph.RandomMultigraph(n, m, rng.New(seed))
}

// NewSpec wraps a graph in an empty network spec; declare roles with
// SetSource/SetSink/SetRetention.
func NewSpec(g *Multigraph) *Spec { return core.NewSpec(g) }

// NewLGG returns the canonical LGG protocol.
func NewLGG() *LGG { return core.NewLGG() }

// NewEngine builds an engine with classical defaults (exact arrivals, no
// losses, truthful declarations, maximal extraction).
func NewEngine(spec *Spec, r Router) *Engine { return core.NewEngine(spec, r) }

// Run executes an engine and classifies the run.
func Run(e *Engine, opts Options) *Result { return sim.Run(e, opts) }

// Classify returns the feasibility class of a network (Definitions 3–4).
func Classify(spec *Spec) Feasibility {
	return spec.Analyze(flow.NewPushRelabel()).Feasibility
}

// Analyze returns the full feasibility analysis (max flow, f*, min cuts).
func Analyze(spec *Spec) *Analysis {
	return spec.Analyze(flow.NewPushRelabel())
}

// StabilityBounds computes Lemma 1's explicit constants for an
// unsaturated network.
func StabilityBounds(spec *Spec) (Bounds, error) {
	return core.ComputeBounds(spec, flow.NewPushRelabel())
}

// FlowRouter returns the clairvoyant baseline that routes along a
// maximum-flow path system (the paper's "optimal method").
func FlowRouter(spec *Spec) (Router, error) {
	return baseline.NewFlowRouter(spec, flow.NewPushRelabel())
}

// ShortestPathRouter returns the hot-potato baseline.
func ShortestPathRouter(spec *Spec) Router { return baseline.NewShortestPath(spec) }

// RandomRouter returns the random-forwarding baseline.
func RandomRouter(seed uint64) Router { return baseline.NewRandomForward(rng.New(seed)) }

// WithBernoulliLoss equips the engine with i.i.d. packet loss of
// probability p.
func WithBernoulliLoss(e *Engine, p float64, seed uint64) *Engine {
	e.Loss = &loss.Bernoulli{P: p, R: rng.New(seed)}
	return e
}

// WithThinnedArrivals makes every source inject Binomial(in(v), p)
// packets per step (a generalized source, Definition 5).
func WithThinnedArrivals(e *Engine, p float64, seed uint64) *Engine {
	e.Arrivals = &arrivals.Thinned{P: p, R: rng.New(seed)}
	return e
}

// WithLoad scales the nominal arrivals to num/den of in(v) (long-run
// exact via an error accumulator).
func WithLoad(e *Engine, num, den int64) *Engine {
	e.Arrivals = &arrivals.Scaled{Inner: core.ExactArrivals{}, Num: num, Den: den}
	return e
}

// WithNodeExclusiveInterference schedules each step's transmissions as a
// matching (node-exclusive spectrum sharing); oracle picks the
// gradient-weighted greedy matching.
func WithNodeExclusiveInterference(e *Engine, oracle bool) *Engine {
	if oracle {
		e.Interference = interference.NewOracle(interference.NodeExclusive)
	} else {
		e.Interference = interference.NewGreedy(interference.NodeExclusive)
	}
	return e
}

// PacketEngine is the packet-identity twin of Engine: FIFO queues with
// tracked packets, yielding latency, hop-count and delivery metrics the
// count model cannot provide. Its step semantics are cross-validated to
// match Engine exactly.
type PacketEngine = packetsim.Engine

// NewPacketEngine builds a packet-level engine with classical defaults.
func NewPacketEngine(spec *Spec, r Router) *PacketEngine {
	return packetsim.New(spec, r)
}

// WithBlinkingEdges animates the topology (Conjecture 4): the victim
// edges take turns being down, one at a time for period steps each; all
// other edges stay alive.
func WithBlinkingEdges(e *Engine, victims []EdgeID, period int64) *Engine {
	e.Topology = &dynamic.RoundRobinBlink{Victims: victims, Period: period}
	return e
}

// WithBurstyArrivals makes sources alternate overload and silence
// deterministically (Conjecture 2): within each period, the first
// burstLen steps inject factor·in(v) and the rest inject nothing.
func WithBurstyArrivals(e *Engine, period, burstLen, factor int64) *Engine {
	e.Arrivals = &arrivals.Bursty{Period: period, BurstLen: burstLen, BurstFactor: factor}
	return e
}

// Potential returns the network state P = Σ q(v)² of a queue vector
// (Definition 1).
func Potential(q []int64) int64 { return core.Potential(q) }
