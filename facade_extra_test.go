package repro

import (
	"testing"
)

func TestFacadeBlinkingEdges(t *testing.T) {
	spec := NewSpec(Theta(4, 2)).SetSource(0, 2).SetSink(1, 4)
	e := NewEngine(spec, NewLGG())
	// blink the last path's edges one at a time: capacity 3 ≥ 2 always
	WithBlinkingEdges(e, []EdgeID{6, 7}, 5)
	res := Run(e, Options{Horizon: 800})
	if res.Diagnosis.Verdict != StableVerdict {
		t.Fatalf("blinking run verdict = %v", res.Diagnosis.Verdict)
	}
}

func TestFacadeBurstyArrivals(t *testing.T) {
	spec := NewSpec(Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	e := NewEngine(spec, NewLGG())
	WithBurstyArrivals(e, 10, 5, 2) // avg = in
	res := Run(e, Options{Horizon: 800})
	if res.Diagnosis.Verdict == DivergingVerdict {
		t.Fatal("compensated bursts diverged")
	}
	// total injected = horizon/10 windows × 5 steps × 2·2 packets
	want := int64(800 / 10 * 5 * 4)
	if res.Totals.Injected != want {
		t.Fatalf("injected = %d, want %d", res.Totals.Injected, want)
	}
}

func TestFacadeGridHelper(t *testing.T) {
	g := Grid(2, 3)
	// ids: (r,c) = r*3+c
	if g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Fatalf("grid degrees: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestFacadeVerdictAndClassStrings(t *testing.T) {
	if StableVerdict.String() != "stable" || Unsaturated.String() != "unsaturated" {
		t.Fatal("constant re-exports broken")
	}
}

func TestFacadeSaturatedBoundsError(t *testing.T) {
	spec := NewSpec(Line(3)).SetSource(0, 1).SetSink(2, 1)
	if _, err := StabilityBounds(spec); err == nil {
		t.Fatal("bounds on a saturated network should fail")
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	sched, err := ParseFaultSchedule("down@50-80:e=0+3")
	if err != nil {
		t.Fatal(err)
	}
	if FormatFaultSchedule(sched) != "down@50-80:e=0+3" {
		t.Fatalf("round-trip broke: %q", FormatFaultSchedule(sched))
	}
	spec := NewSpec(Cycle(4)).SetSource(0, 1).SetSink(2, 2)
	e := NewEngine(spec, NewLGG())
	if _, err := InjectFaults(e, sched, 21); err != nil {
		t.Fatal(err)
	}
	obs := NewRecoveryObserver(sched)
	e.AddObserver(obs)
	Run(e, Options{Horizon: 400})
	if rec := obs.Report(); rec.Verdict.String() != "Recovered" {
		t.Fatalf("verdict = %v, want Recovered", rec.Verdict)
	}
}

func TestFacadeChurnAndJournal(t *testing.T) {
	g := Theta(3, 2)
	sched, err := GenerateChurn(ChurnConfig{MTBF: 50, MTTR: 10, Horizon: 200}, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) == 0 {
		t.Fatal("churn generated no events")
	}
	for _, ev := range sched.Events {
		if ev.Kind != FaultLinkDown {
			t.Fatalf("churn produced %s events", ev.Kind)
		}
	}
	path := t.TempDir() + "/j.jsonl"
	j, err := CreateSweepJournal(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(SweepResult{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, prefix, err := OpenSweepJournalResume(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(prefix) != 1 {
		t.Fatalf("resume prefix = %d results, want 1", len(prefix))
	}
}
