# shellcheck shell=bash
# Shared harness for the lggd smoke scripts (scripts/lggd_*_smoke.sh).
# Source it first thing:
#
#	. "$(dirname "$0")/lib.sh"
#
# It sets strict mode and provides:
#
#   $smoke       the script's name ("lggd_fleet_smoke"), used to prefix
#                every message;
#   $dir         a scratch directory, removed on exit;
#   $pids        an array of daemon PIDs to reap — append with
#                `pids+=($!)` after every background daemon. On ANY exit
#                (success, failure, or signal) every listed process is
#                TERMed first so it can checkpoint, KILLed only if it
#                hangs past 5s, and reaped with wait, so a failed run can
#                never leave a stray process holding a port for the next
#                CI attempt. The original exit status is preserved;
#   fail MSG     print "$smoke: MSG", tail every *.log in $dir, exit 1;
#   wait_healthy HOST:PORT NAME
#                poll http://HOST:PORT/healthz for up to 10s, fail() if
#                it never answers;
#   say MSG      print "$smoke: MSG" on stdout (progress markers).

set -euo pipefail

smoke=$(basename "$0" .sh)
dir=$(mktemp -d)
pids=()

cleanup() {
  status=$?
  trap - EXIT INT TERM
  for pid in "${pids[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]}"; do
    for _ in $(seq 1 50); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.1
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$dir"
  exit "$status"
}
trap cleanup EXIT INT TERM

fail() {
  echo "$smoke: $*" >&2
  for f in "$dir"/*.log; do
    [ -f "$f" ] || continue
    echo "--- $f" >&2
    tail -15 "$f" >&2
  done
  exit 1
}

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "$2 never became healthy"
}

say() { echo "$smoke: $*"; }
