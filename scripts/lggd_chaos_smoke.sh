#!/usr/bin/env bash
# Chaos smoke for the lggd serving plane — the CI gate for the
# fault-injection determinism contract (internal/chaos):
#
#   1. faulted fidelity: a coordinator runs with -chaos arming a seeded
#      schedule (injected 5xx bursts, response stalls, added latency)
#      over its entire worker-facing HTTP plane, and the merged sweep it
#      serves is still byte-identical (cmp) to the same sweep run
#      in-process — the retry/steal/merge machinery absorbs every
#      injected fault without corrupting a byte;
#   2. replayability: the injector logs a non-empty transcript of the
#      events it fired, written on clean drain, so any failure here can
#      be replayed exactly from the seed;
#   3. rank-ordered failover under chaos: a primary + rank 1 + rank 2
#      chain runs with connection resets and latency injected into the
#      rank 1 standby; the primary is SIGKILLed mid-sweep, rank 1
#      promotes (rank 2 defers to it and stays standby), and the job
#      finishes on rank 1 byte-identical to the in-process run.
. "$(dirname "$0")/lib.sh"

coord=127.0.0.1:8450
wa1=127.0.0.1:8451
wa2=127.0.0.1:8452
primary=127.0.0.1:8453
rank1=127.0.0.1:8454
rank2=127.0.0.1:8455
wb1=127.0.0.1:8456
wb2=127.0.0.1:8457

go build -o "$dir/lggd" ./cmd/lggd
go build -o "$dir/lggsweep" ./cmd/lggsweep

spec='-grid faults -quick -seeds 2 -horizon 150000'
# shellcheck disable=SC2086
"$dir/lggsweep" $spec -quiet -faults 'down@40-80:e=1' -out "$dir/local.jsonl"

# --- 1+2. chaos-armed coordinator still merges byte-identically -------
"$dir/lggd" -addr "$wa1" -state "$dir/wa1" -jobs 2 -sweep-workers 1 >"$dir/wa1.log" 2>&1 &
pids+=($!)
"$dir/lggd" -addr "$wa2" -state "$dir/wa2" -jobs 2 -sweep-workers 1 >"$dir/wa2.log" 2>&1 &
pids+=($!)
wait_healthy "$wa1" "worker a1"
wait_healthy "$wa2" "worker a2"

# The first two requests on each worker route are answered with a
# synthetic 503, the next three stall 100ms mid-body, and the first 32
# carry seeded jittered latency — all deterministic from -chaos-seed.
"$dir/lggd" -coordinator -addr "$coord" -state "$dir/coord" \
  -fleet "http://$wa1,http://$wa2" -range-runs 3 -lease 3s \
  -chaos 'err@0-2:code=503;stall@2-5:ms=100;latency@0-32:ms=2,jitter=5' \
  -chaos-seed 42 -chaos-name coordinator \
  -chaos-endpoints "worker1=$wa1,worker2=$wa2" \
  -chaos-transcript "$dir/chaos.transcript" \
  >"$dir/coord.log" 2>&1 &
coord_pid=$!
pids+=($coord_pid)
wait_healthy "$coord" "chaos coordinator"
grep -q 'chaos schedule armed (seed 42)' "$dir/coord.log" || fail "coordinator did not arm the chaos schedule"

# shellcheck disable=SC2086
"$dir/lggsweep" -remote "$coord" $spec -quiet \
  -faults 'down@40-80:e=1' -out "$dir/chaos.jsonl" >"$dir/sweep.log" 2>&1 \
  || { cat "$dir/sweep.log" >&2; fail "sweep through the chaos coordinator failed"; }
cmp "$dir/local.jsonl" "$dir/chaos.jsonl" || fail "chaos-coordinator JSONL differs from the in-process JSONL"
say "merged output byte-identical under injected 5xx/stall/latency ($(wc -l <"$dir/local.jsonl") lines) ✓"

kill -TERM "$coord_pid"
wait "$coord_pid" || fail "chaos coordinator drain exited non-zero"
[ -s "$dir/chaos.transcript" ] || fail "chaos transcript is empty — the schedule injected nothing"
grep -q 'chaos transcript' "$dir/coord.log" || fail "clean drain did not report the transcript write"
say "injected-event transcript written on drain ($(wc -l <"$dir/chaos.transcript") events) ✓"

# --- 3. rank-ordered failover with chaos on the promoted standby ------
"$dir/lggd" -addr "$wb1" -state "$dir/wb1" -jobs 2 -sweep-workers 1 >"$dir/wb1.log" 2>&1 &
pids+=($!)
"$dir/lggd" -addr "$wb2" -state "$dir/wb2" -jobs 2 -sweep-workers 1 >"$dir/wb2.log" 2>&1 &
pids+=($!)
wait_healthy "$wb1" "worker b1"
wait_healthy "$wb2" "worker b2"

"$dir/lggd" -coordinator -addr "$primary" -state "$dir/primary" \
  -fleet "http://$wb1,http://$wb2" -range-runs 3 -lease 3s \
  >"$dir/primary.log" 2>&1 &
primary_pid=$!
pids+=($primary_pid)
wait_healthy "$primary" "chain primary"

# Rank 1 runs with chaos: its first two requests on EVERY route (primary
# heartbeats now, worker dispatch after promotion) are reset, and early
# requests carry seeded latency. The failover must absorb all of it.
"$dir/lggd" -coordinator -standby -primary "http://$primary" -rank 1 \
  -addr "$rank1" -state "$dir/rank1" -range-runs 3 -lease 3s \
  -heartbeat 300ms -failover-after 2s \
  -chaos 'reset@0-2;latency@0-48:ms=2,jitter=6' -chaos-seed 7 \
  -chaos-name rank1 \
  -chaos-endpoints "primary=$primary,worker1=$wb1,worker2=$wb2" \
  >"$dir/rank1.log" 2>&1 &
pids+=($!)
wait_healthy "$rank1" "rank 1 standby"

# Rank 2 watches BOTH the primary and rank 1: it may only promote once
# every better-ranked coordinator has gone silent.
"$dir/lggd" -coordinator -standby -primary "http://$primary" -rank 2 \
  -watch "http://$rank1" \
  -addr "$rank2" -state "$dir/rank2" -range-runs 3 -lease 3s \
  -heartbeat 300ms -failover-after 2s \
  >"$dir/rank2.log" 2>&1 &
pids+=($!)
wait_healthy "$rank2" "rank 2 standby"

job=$(curl -sf -X POST "http://$primary/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"grid":"faults","quick":true,"seeds":2,"horizon":150000,"faults":"down@40-80:e=1"}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$job" ] || fail "chain primary refused the job submission"

for i in $(seq 1 200); do
  done_runs=$(curl -s "http://$primary/v1/jobs/$job" | sed -n 's/.*"done": \([0-9]*\).*/\1/p')
  mirrored=$(curl -s "http://$rank1/v1/jobs/$job" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')
  [ -n "$done_runs" ] && [ "$done_runs" -gt 0 ] && [ "$mirrored" = running ] && break
  [ "$i" = 200 ] && fail "rank 1 never mirrored the running job (done=$done_runs mirrored=$mirrored)"
  sleep 0.05
done
kill -9 "$primary_pid" 2>/dev/null || true
say "chain primary SIGKILLed at $done_runs finished runs"

for i in $(seq 1 200); do
  role=$(curl -s "http://$rank1/v1/coordinator/status" | sed -n 's/.*"role": "\([a-z]*\)".*/\1/p')
  [ "$role" = primary ] && break
  [ "$i" = 200 ] && fail "rank 1 never promoted itself (role=$role)"
  sleep 0.1
done
curl -s "http://$rank1/v1/coordinator/status" | grep -q '"rank": 1' \
  || fail "promoted rank 1 does not report its rank"
say "rank 1 promoted under chaos ✓"

# Rank 2 must keep deferring to the live rank 1 it watches.
sleep 3
r2ready=$(curl -s -o /dev/null -w '%{http_code}' "http://$rank2/readyz")
[ "$r2ready" = 503 ] || fail "rank 2 readyz answered $r2ready, want 503 (must defer to live rank 1)"
r2role=$(curl -s "http://$rank2/v1/coordinator/status" | sed -n 's/.*"role": "\([a-z]*\)".*/\1/p')
[ "$r2role" = standby ] || fail "rank 2 promoted over a live rank 1 (role=$r2role)"
say "rank 2 defers to the live rank 1 ✓"

for i in $(seq 1 600); do
  status=$(curl -s "http://$rank1/v1/jobs/$job" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')
  [ "$status" = done ] && break
  case "$status" in failed|cancelled) fail "resumed job ended $status";; esac
  [ "$i" = 600 ] && fail "resumed job never finished on rank 1 (status=$status)"
  sleep 0.1
done

curl -sf "http://$rank1/v1/jobs/$job/results" -o "$dir/chain.jsonl" \
  || fail "fetching merged results from promoted rank 1 failed"
cmp "$dir/local.jsonl" "$dir/chain.jsonl" || fail "post-failover chaos JSONL differs from the in-process JSONL"
say "post-failover output byte-identical under chaos ($(wc -l <"$dir/local.jsonl") lines) ✓"

say "all checks passed"
