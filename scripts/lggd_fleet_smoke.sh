#!/usr/bin/env bash
# Federation smoke for the lggd coordinator — the CI gate for the
# fleet's byte-stability contract:
#
#   1. fleet forms: two workers are seeded with -fleet, a third joins
#      itself at runtime with -join, and /v1/fleet shows all three;
#   2. fault tolerance: one worker is SIGKILLed mid-sweep and the
#      coordinator reroutes its ranges to the survivors;
#   3. fidelity: the merged output fetched through the coordinator is
#      byte-identical (cmp) to the same sweep run in-process — the
#      determinism contract holds across sharding, a worker death, and
#      the k-way merge;
#   4. compaction: the finished job is queryable as per-cell summaries
#      at GET /v1/results, filtered by the tenant it was submitted as.
. "$(dirname "$0")/lib.sh"

coord=127.0.0.1:8430
w1=127.0.0.1:8431
w2=127.0.0.1:8432
w3=127.0.0.1:8433

go build -o "$dir/lggd" ./cmd/lggd
go build -o "$dir/lggsweep" ./cmd/lggsweep

# --- 1. fleet forms: two seeded workers + one runtime join ------------
"$dir/lggd" -addr "$w1" -state "$dir/w1" -jobs 2 -sweep-workers 1 >"$dir/w1.log" 2>&1 &
pids+=($!)
"$dir/lggd" -addr "$w2" -state "$dir/w2" -jobs 2 -sweep-workers 1 >"$dir/w2.log" 2>&1 &
w2pid=$!
pids+=($w2pid)
wait_healthy "$w1" "worker 1"
wait_healthy "$w2" "worker 2"

"$dir/lggd" -coordinator -addr "$coord" -state "$dir/coord" \
  -fleet "http://$w1,http://$w2" -range-runs 3 -lease 3s \
  >"$dir/coord.log" 2>&1 &
pids+=($!)
wait_healthy "$coord" "coordinator"

"$dir/lggd" -addr "$w3" -state "$dir/w3" -jobs 2 -sweep-workers 1 \
  -join "http://$coord" -advertise "http://$w3" >"$dir/w3.log" 2>&1 &
pids+=($!)
wait_healthy "$w3" "worker 3"
for i in $(seq 1 100); do
  n=$(curl -s "http://$coord/v1/fleet" | grep -c 'http://' || true)
  [ "$n" = 3 ] && break
  [ "$i" = 100 ] && fail "fleet never reached 3 workers (have $n)"
  sleep 0.1
done
say "fleet of 3 formed (1 via -join) ✓"

# --- 2+3. kill a worker mid-sweep; merged bytes match in-process ------
spec='-grid faults -quick -seeds 2 -horizon 150000'
# shellcheck disable=SC2086
"$dir/lggsweep" $spec -quiet -faults 'down@40-80:e=1' -out "$dir/local.jsonl"

# shellcheck disable=SC2086
"$dir/lggsweep" -remote "$coord" -tenant acme $spec -quiet \
  -faults 'down@40-80:e=1' -out "$dir/fleet.jsonl" >"$dir/sweep.log" 2>&1 &
sweep_pid=$!

# Kill worker 2 the moment the sweep shows progress, while runs are
# still outstanding.
for i in $(seq 1 200); do
  done_runs=$(curl -s "http://$coord/v1/jobs/job-00000000" | sed -n 's/.*"done": \([0-9]*\).*/\1/p')
  [ -n "$done_runs" ] && [ "$done_runs" -gt 0 ] && break
  [ "$i" = 200 ] && fail "fleet sweep never made progress"
  sleep 0.05
done
kill -9 "$w2pid" 2>/dev/null || true
say "worker 2 SIGKILLed at $done_runs finished runs"

if ! wait "$sweep_pid"; then
  cat "$dir/sweep.log" >&2
  fail "fleet sweep failed after the worker was killed"
fi
cmp "$dir/local.jsonl" "$dir/fleet.jsonl" || fail "merged fleet JSONL differs from the in-process JSONL"
say "merged output byte-identical to in-process run ($(wc -l <"$dir/local.jsonl") lines) ✓"

# --- 4. finished job compacts into queryable summaries ----------------
cells=$(curl -s "http://$coord/v1/results?tenant=acme" | grep -c '"job": "job-00000000"' || true)
# faults -quick seeds=2: 24 runs = 12 cells of 2 replicas.
[ "$cells" = 12 ] || fail "tenant query returned $cells cells, want 12"
none=$(curl -s "http://$coord/v1/results?tenant=nosuch")
[ "$none" = "[]" ] || fail "filter miss returned $none, want []"
say "compacted summaries queryable per tenant (12 cells) ✓"

say "all checks passed"
