#!/usr/bin/env bash
# Load-shed and drain smoke for the lggd daemon — the CI gate for the
# service's robustness contract:
#
#   1. overload: with the worker busy and the queue full, the next
#      submission is shed with HTTP 429 + a Retry-After hint, and the
#      shed is visible in /metrics;
#   2. drain: SIGTERM checkpoints the in-flight job and exits 0;
#   3. durability: a restart on the same state directory resumes the
#      interrupted jobs (which are then cancelled over the API);
#   4. fidelity: a sweep submitted through `lggsweep -remote` produces
#      byte-identical JSONL to the same sweep run in-process.
. "$(dirname "$0")/lib.sh"

addr=127.0.0.1:8411

go build -o "$dir/lggd" ./cmd/lggd
go build -o "$dir/lggsweep" ./cmd/lggsweep

"$dir/lggd" -addr "$addr" -state "$dir/state" -jobs 1 -queue 1 -drain-grace 2s >"$dir/lggd.log" 2>&1 &
pid=$!
pids+=($pid)
wait_healthy "$addr" "daemon"
curl -sf "http://$addr/readyz" >/dev/null || fail "readyz not 200 on a fresh daemon"

# --- 1. overload sheds with 429 + Retry-After -------------------------
# Occupy the single worker and fill the one queue slot with jobs far too
# large to finish.
for i in 1 2; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/jobs" \
    -d '{"grid":"stability","seeds":8,"horizon":2000000000}')
  [ "$code" = 202 ] || fail "fill $i: got $code, want 202"
done
hdrs=$(curl -s -D - -o /dev/null -X POST "http://$addr/v1/jobs" \
  -d '{"grid":"stability","seeds":1,"horizon":100}')
echo "$hdrs" | head -1 | grep -q 429 || fail "overload answered $(echo "$hdrs" | head -1), want 429"
echo "$hdrs" | grep -qi '^retry-after: [0-9]' || fail "429 carries no Retry-After header"
curl -s "http://$addr/metrics" | grep -q '^lggd_jobs_shed_total 1$' || fail "shed not counted in /metrics"
say "overload shed with 429 + Retry-After ✓"

# --- 2. SIGTERM drains cleanly ----------------------------------------
kill -TERM "$pid"
if ! wait "$pid"; then fail "drain exited non-zero"; fi
grep -q 'checkpointed' "$dir/lggd.log" || fail "no checkpoint logged during drain"
grep -q 'drained cleanly' "$dir/lggd.log" || fail "daemon did not report a clean drain"
say "SIGTERM drain exited 0 with a checkpoint ✓"

# --- 3. restart resumes the interrupted jobs --------------------------
"$dir/lggd" -addr "$addr" -state "$dir/state" -jobs 1 -drain-grace 2s >>"$dir/lggd.log" 2>&1 &
pid=$!
pids+=($pid)
wait_healthy "$addr" "restarted daemon"
resumed=$(curl -s "http://$addr/metrics" | awk '/^lggd_jobs_resumed_total /{print $2}')
[ "$resumed" = 2 ] || fail "resumed $resumed jobs after restart, want 2"
for id in job-00000000 job-00000001; do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$addr/v1/jobs/$id")
  [ "$code" = 200 ] || fail "cancel $id: got $code"
done
for i in $(seq 1 100); do
  curl -s "http://$addr/v1/jobs/job-00000000" | grep -q '"status": "cancelled"' && break
  [ "$i" = 100 ] && fail "resumed job never cancelled"
  sleep 0.1
done
say "restart resumed 2 jobs, API cancel works ✓"

# --- 4. remote sweep is byte-identical to local -----------------------
"$dir/lggsweep" -grid faults -quick -seeds 2 -horizon 300 -quiet \
  -faults 'down@40-80:e=1' -out "$dir/local.jsonl"
"$dir/lggsweep" -remote "$addr" -grid faults -quick -seeds 2 -horizon 300 -quiet \
  -faults 'down@40-80:e=1' -out "$dir/remote.jsonl"
cmp "$dir/local.jsonl" "$dir/remote.jsonl" || fail "remote JSONL differs from local JSONL"
say "remote sweep byte-identical to local ($(wc -l <"$dir/local.jsonl") lines) ✓"

kill -TERM "$pid"
wait "$pid" || fail "final drain exited non-zero"
say "all checks passed"
