#!/usr/bin/env bash
# Coordinator-failover smoke for lggd federation — the CI gate for the
# no-SPOF contract:
#
#   1. a warm standby tails the primary: started with NO -fleet of its
#      own, it learns both workers purely by mirroring the primary's
#      /v1/coordinator/status, and refuses submissions (readyz 503);
#   2. failover: the primary is SIGKILLed mid-sweep; after
#      -failover-after without a heartbeat the standby promotes itself
#      (readyz 200, role "primary") and resumes the in-flight job;
#   3. fidelity: the job finishes on the standby and its merged journal
#      is byte-identical (cmp) to the same sweep run in-process — the
#      determinism contract survives a coordinator death, because
#      idempotency keys re-attach the surviving worker-side range jobs;
#   4. observability: the standby's metrics record exactly one failover
#      and export per-worker health gauges.
. "$(dirname "$0")/lib.sh"

primary=127.0.0.1:8440
standby=127.0.0.1:8441
w1=127.0.0.1:8442
w2=127.0.0.1:8443

go build -o "$dir/lggd" ./cmd/lggd
go build -o "$dir/lggsweep" ./cmd/lggsweep

# --- 1. primary + tailing standby -------------------------------------
"$dir/lggd" -addr "$w1" -state "$dir/w1" -jobs 2 -sweep-workers 1 >"$dir/w1.log" 2>&1 &
pids+=($!)
"$dir/lggd" -addr "$w2" -state "$dir/w2" -jobs 2 -sweep-workers 1 >"$dir/w2.log" 2>&1 &
pids+=($!)
wait_healthy "$w1" "worker 1"
wait_healthy "$w2" "worker 2"

# -suspect-after 5s keeps the membership (and per-worker gauge) cadence
# sub-second so the short smoke window observes a health export.
"$dir/lggd" -coordinator -addr "$primary" -state "$dir/primary" \
  -fleet "http://$w1,http://$w2" -range-runs 3 -lease 3s -suspect-after 5s \
  >"$dir/primary.log" 2>&1 &
primary_pid=$!
pids+=($primary_pid)
wait_healthy "$primary" "primary coordinator"

# The standby gets NO -fleet: everything it knows about the workers must
# arrive by mirroring the primary.
"$dir/lggd" -coordinator -standby -primary "http://$primary" \
  -addr "$standby" -state "$dir/standby" -range-runs 3 -lease 3s \
  -suspect-after 5s -heartbeat 300ms -failover-after 2s \
  >"$dir/standby.log" 2>&1 &
pids+=($!)
wait_healthy "$standby" "standby coordinator"

ready=$(curl -s -o /dev/null -w '%{http_code}' "http://$standby/readyz")
[ "$ready" = 503 ] || fail "standby readyz answered $ready, want 503 before promotion"
for i in $(seq 1 100); do
  n=$(curl -s "http://$standby/v1/fleet" | grep -c 'http://' || true)
  [ "$n" = 2 ] && break
  [ "$i" = 100 ] && fail "standby never mirrored the 2-worker fleet (have $n)"
  sleep 0.1
done
say "standby tailing primary, fleet mirrored (2 workers) ✓"

# --- 2+3. SIGKILL the primary mid-sweep; standby finishes the job -----
spec='-grid faults -quick -seeds 2 -horizon 150000'
# shellcheck disable=SC2086
"$dir/lggsweep" $spec -quiet -faults 'down@40-80:e=1' -out "$dir/local.jsonl"

job=$(curl -sf -X POST "http://$primary/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"grid":"faults","quick":true,"seeds":2,"horizon":150000,"faults":"down@40-80:e=1"}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$job" ] || fail "primary refused the job submission"

# Kill the primary the moment the sweep shows progress on the primary
# AND the standby has mirrored the job in a non-terminal state — killing
# any earlier risks a mirror with nothing to resume, any later risks the
# job finishing unfailed.
for i in $(seq 1 200); do
  done_runs=$(curl -s "http://$primary/v1/jobs/$job" | sed -n 's/.*"done": \([0-9]*\).*/\1/p')
  mirrored=$(curl -s "http://$standby/v1/jobs/$job" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')
  [ -n "$done_runs" ] && [ "$done_runs" -gt 0 ] && [ "$mirrored" = running ] && break
  [ "$i" = 200 ] && fail "standby never mirrored the running job (done=$done_runs mirrored=$mirrored)"
  sleep 0.05
done
kill -9 "$primary_pid" 2>/dev/null || true
say "primary SIGKILLed at $done_runs finished runs"

for i in $(seq 1 200); do
  role=$(curl -s "http://$standby/v1/coordinator/status" | sed -n 's/.*"role": "\([a-z]*\)".*/\1/p')
  [ "$role" = primary ] && break
  [ "$i" = 200 ] && fail "standby never promoted itself (role=$role)"
  sleep 0.1
done
ready=$(curl -s -o /dev/null -w '%{http_code}' "http://$standby/readyz")
[ "$ready" = 200 ] || fail "promoted standby readyz answered $ready, want 200"
say "standby promoted to primary ✓"

for i in $(seq 1 600); do
  status=$(curl -s "http://$standby/v1/jobs/$job" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p')
  [ "$status" = done ] && break
  case "$status" in failed|cancelled) fail "resumed job ended $status";; esac
  [ "$i" = 600 ] && fail "resumed job never finished (status=$status)"
  sleep 0.1
done

curl -sf "http://$standby/v1/jobs/$job/results" -o "$dir/failover.jsonl" \
  || fail "fetching merged results from the promoted standby failed"
cmp "$dir/local.jsonl" "$dir/failover.jsonl" || fail "post-failover merged JSONL differs from the in-process JSONL"
say "post-failover output byte-identical to in-process run ($(wc -l <"$dir/local.jsonl") lines) ✓"

# --- 4. the failover and worker health are observable -----------------
curl -s "http://$standby/metrics" >"$dir/metrics.out"
grep -q '^lggfed_failovers_total 1$' "$dir/metrics.out" || fail "metrics do not record exactly one failover"
grep -q '^lggfed_standby 0$' "$dir/metrics.out" || fail "promoted standby still exports lggfed_standby 1"
grep -q '^lggfed_worker_lease_ms_' "$dir/metrics.out" || fail "per-worker health gauges missing"
say "failover + worker health visible in /metrics ✓"

say "all checks passed"
