package repro_test

import (
	"fmt"

	"repro"
)

// The quickstart flow: build a network, classify it, run LGG.
func Example() {
	g := repro.Theta(3, 2) // 3 disjoint 2-hop paths between nodes 0 and 1
	spec := repro.NewSpec(g).SetSource(0, 2).SetSink(1, 3)

	fmt.Println(repro.Classify(spec))

	eng := repro.NewEngine(spec, repro.NewLGG())
	res := repro.Run(eng, repro.Options{Horizon: 2000})
	fmt.Println(res.Diagnosis.Verdict)
	// Output:
	// unsaturated
	// stable
}

// Feasibility analysis exposes the quantities of Section II-B.
func ExampleAnalyze() {
	spec := repro.NewSpec(repro.Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	a := repro.Analyze(spec)
	fmt.Println("rate:", a.ArrivalRate)
	fmt.Println("f*:", a.FStar)
	fmt.Println("class:", a.Feasibility)
	// Output:
	// rate: 2
	// f*: 3
	// class: unsaturated
}

// Overloading past f* diverges for every protocol (Theorem 1's converse).
func ExampleWithLoad() {
	spec := repro.NewSpec(repro.Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	eng := repro.NewEngine(spec, repro.NewLGG())
	repro.WithLoad(eng, 3, 1) // 3× the nominal rate = 2·f*
	res := repro.Run(eng, repro.Options{Horizon: 2000})
	fmt.Println(res.Diagnosis.Verdict)
	// Output:
	// diverging
}

// Lemma 1's explicit constants for an unsaturated network.
func ExampleStabilityBounds() {
	spec := repro.NewSpec(repro.Theta(3, 2)).SetSource(0, 2).SetSink(1, 3)
	b, _ := repro.StabilityBounds(spec)
	fmt.Printf("ε=%.0f 5nΔ²=%.0f Y=%.0f\n", b.Eps, b.GrowthBound, b.Y)
	// Output:
	// ε=1 5nΔ²=225 Y=810
}

// The packet-identity engine measures latency the count model cannot.
func ExampleNewPacketEngine() {
	spec := repro.NewSpec(repro.Line(4)).SetSource(0, 1).SetSink(3, 1)
	pe := repro.NewPacketEngine(spec, repro.NewLGG())
	pe.Run(5000)
	fmt.Printf("hops: %.1f\n", pe.MeanHops())
	// Output:
	// hops: 3.0
}
