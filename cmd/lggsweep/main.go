// Command lggsweep runs a named parameter grid on the parallel sweep
// runner and emits one JSON line per run (plus, optionally, a CSV table,
// per-cell aggregates, a live JSONL event stream and a Prometheus-style
// metrics scrape).
//
// Results are deterministic: each run draws its randomness only from the
// root seed and its grid index, and output is emitted in grid order, so
// the bytes — including the -events stream and the -metrics scrape —
// are identical whether the sweep runs on 1 worker or 64.
//
// A sweep cut short — by -timeout, Ctrl-C or SIGTERM — still writes every
// finished run to its outputs (the deterministic in-order prefix) and then
// exits non-zero so callers know the table is truncated. With -journal the
// prefix is also checkpointed on disk as it is produced, and -resume picks
// a killed sweep up from exactly where the journal ends.
//
// With -remote the sweep is not executed in-process: the job is submitted
// to a running lggd daemon through the hardened API client (retries with
// backoff + jitter, Retry-After honoured, idempotent submission, circuit
// breaker), followed to completion, and the fetched results feed the same
// output flags. Durability then lives server-side: -journal/-resume are
// local-mode flags and are rejected with -remote.
//
// With -adaptive the grid is not enumerated: the sweep becomes a
// frontier search that bisects the named numeric -axis of the grid's
// typed-axis space, per cell group, for the coordinate where the stable
// share crosses -threshold — spending between -min-seeds and -max-seeds
// replicas per probed coordinate, early-stopped on a Wilson confidence
// interval. -out then carries one frontier-result line per group,
// -probes the per-run probe stream, and -journal/-resume checkpoint the
// refinement itself (the journal is created with the adaptive sentinel,
// since the total run count is not known up front). Adaptive output is
// deterministic at any worker count, resume included.
//
// Usage:
//
//	lggsweep -list
//	lggsweep -grid stability [-workers 8] [-seeds 8] [-horizon 3000] \
//	         [-seed 1] [-timeout 10m] [-out runs.jsonl] [-csv runs.csv] \
//	         [-cells cells.jsonl] [-events events.jsonl] [-metrics metrics.prom] \
//	         [-faults 'down@100-200:e=3'] [-journal ckpt.jsonl] [-resume] \
//	         [-retries 2] [-quick] [-shards 8] [-shard-workers 1]
//	lggsweep -grid frontier -adaptive -axis rho [-tol 0.05] [-threshold 0.5] \
//	         [-min-seeds 4] [-max-seeds 16] [-out frontier.jsonl] \
//	         [-probes probes.jsonl] [-journal ckpt.jsonl] [-resume]
//	lggsweep -remote 127.0.0.1:8321 -grid stability [-seeds 8] [...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sweep"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list grids and exit")
		grid        = flag.String("grid", "", "grid name to run (see -list)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "stop dispatching new runs after this long (0 = none)")
		out         = flag.String("out", "-", "JSON-lines output path (- = stdout)")
		csvPath     = flag.String("csv", "", "also write results as CSV to this path")
		cellsPath   = flag.String("cells", "", "write per-cell aggregates here (.csv = CSV, otherwise JSONL)")
		eventsPath  = flag.String("events", "", "stream per-run and per-cell JSONL events here (- = stdout)")
		metricsPath = flag.String("metrics", "", "write aggregated Prometheus text metrics here (- = stdout)")
		seed        = flag.Uint64("seed", 1, "root seed")
		seeds       = flag.Int("seeds", 8, "replicas per grid cell")
		horizon     = flag.Int64("horizon", 3000, "steps per run")
		quick       = flag.Bool("quick", false, "reduced workloads (CI sizes)")
		quiet       = flag.Bool("quiet", false, "suppress the progress reporter")
		faultsArg   = flag.String("faults", "", "inject this fault schedule into every run (text, JSON, or @file)")
		shards      = flag.Int("shards", 0, "run every engine's step loop over this many partition shards (0/1 = serial; output is byte-identical either way)")
		shardWk     = flag.Int("shard-workers", 1, "intra-step worker goroutines per sharded engine (0 = GOMAXPROCS; 1 recommended — sweeps already parallelize across runs)")
		journalPath = flag.String("journal", "", "checkpoint finished runs to this JSONL journal as the sweep progresses")
		resume      = flag.Bool("resume", false, "resume from the -journal file instead of re-running its prefix")
		retries     = flag.Int("retries", 0, "re-attempts for a run that panics before recording it as failed")
		remote      = flag.String("remote", "", "submit to a running lggd daemon (or federation coordinator) at this address instead of sweeping in-process")
		tenant      = flag.String("tenant", "", "tenant name for remote submission; a federation coordinator applies per-tenant quotas and fair-share dispatch to it")
		adaptive    = flag.Bool("adaptive", false, "bisect -axis for the stability frontier instead of enumerating the grid")
		axis        = flag.String("axis", "", "numeric axis to search with -adaptive (e.g. rho)")
		tol         = flag.Float64("tol", 0.05, "adaptive: bracket-width tolerance on the search axis")
		threshold   = flag.Float64("threshold", 0.5, "adaptive: stable-share level the frontier crosses")
		minSeeds    = flag.Int("min-seeds", 4, "adaptive: first replica batch per probed coordinate")
		maxSeeds    = flag.Int("max-seeds", 16, "adaptive: replica cap per probed coordinate")
		probesPath  = flag.String("probes", "", "adaptive: write the per-run probe stream (JSONL) here")
	)
	flag.Parse()

	if *list {
		for _, g := range experiments.SweepGrids() {
			fmt.Printf("%-12s %s\n", g.Name, g.Desc)
		}
		return
	}
	if *grid == "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -grid is required (try -list)")
		os.Exit(2)
	}
	if *remote != "" {
		if *adaptive {
			fmt.Fprintln(os.Stderr, "lggsweep: -adaptive is a local-mode flag; the daemon runs exhaustive sweeps")
			os.Exit(2)
		}
		if *journalPath != "" || *resume || *eventsPath != "" {
			fmt.Fprintln(os.Stderr, "lggsweep: -journal, -resume and -events are local-mode flags; with -remote the daemon owns durability")
			os.Exit(2)
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "lggsweep: -shards is a local-mode flag; the daemon picks its own execution strategy (results are identical)")
			os.Exit(2)
		}
		rs, err := runRemote(*remote, remoteSpec(*grid, *seed, *seeds, *horizon, *quick, *faultsArg, *timeout, *tenant), *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		if err := emitOutputs(rs, *grid, *out, *csvPath, *cellsPath, *metricsPath, *seeds); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tenant != "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -tenant only applies with -remote")
		os.Exit(2)
	}
	g, err := experiments.FindGrid(*grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v (try -list)\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Seeds: *seeds, Horizon: *horizon, Quick: *quick}
	if *adaptive {
		if *axis == "" {
			fmt.Fprintln(os.Stderr, "lggsweep: -adaptive needs -axis (the numeric axis to bisect)")
			os.Exit(2)
		}
		if *csvPath != "" || *cellsPath != "" || *eventsPath != "" || *faultsArg != "" {
			fmt.Fprintln(os.Stderr, "lggsweep: -csv, -cells, -events and -faults are exhaustive-mode flags; -adaptive emits frontier results (-out) and probes (-probes)")
			os.Exit(2)
		}
		if g.Space == nil {
			fmt.Fprintf(os.Stderr, "lggsweep: grid %q has no typed-axis space; -adaptive needs one\n", g.Name)
			os.Exit(2)
		}
		runAdaptive(g.Space(cfg), adaptiveFlags{
			axis: *axis, tol: *tol, threshold: *threshold,
			minSeeds: *minSeeds, maxSeeds: *maxSeeds,
			workers: *workers, timeout: *timeout, retries: *retries, quiet: *quiet,
			shards: *shards, shardWorkers: *shardWk,
			journalPath: *journalPath, resume: *resume,
			out: *out, probesPath: *probesPath, metricsPath: *metricsPath,
		})
		return
	}
	jobs := g.Jobs(cfg)
	if *faultsArg != "" {
		if err := experiments.ApplyFaults(jobs, *faultsArg); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(2)
		}
	}
	if *shards > 1 {
		if err := experiments.ApplyShards(jobs, *shards, *shardWk); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(2)
		}
	}

	runner := &sweep.Runner{Workers: *workers, Timeout: *timeout, Retries: *retries}
	if !*quiet {
		runner.Progress = sweep.NewReporter(os.Stderr, time.Second)
	}
	var journal *sweep.Journal
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -resume needs -journal")
		os.Exit(2)
	}
	if *journalPath != "" {
		var err error
		if *resume {
			var prefix []sweep.Result
			journal, prefix, err = sweep.OpenJournalResume(*journalPath, len(jobs))
			if err == nil && len(prefix) > 0 {
				fmt.Fprintf(os.Stderr, "lggsweep: resuming %s: %d/%d runs already done\n",
					*journalPath, len(prefix), len(jobs))
				runner.Resume = prefix
			}
		} else {
			journal, err = sweep.CreateJournal(*journalPath, len(jobs))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		runner.Journal = journal
	}
	var es *sweep.EventStreamer
	var eventsClose func() error
	if *eventsPath != "" {
		w, closeFn, err := openOut(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		eventsClose = closeFn
		es = sweep.NewEventStreamer(w, *seeds)
		runner.OnResult = es.OnResult
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	rs, runErr := runner.RunWithContext(ctx, jobs)
	stop()
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: journal: %v\n", err)
			os.Exit(1)
		}
	}
	// A timed-out or signal-interrupted sweep still owns a valid in-order
	// prefix: flush it to every requested output, then exit non-zero below.
	// Any other error (journal write, resume mismatch) is fatal here.
	truncated := errors.Is(runErr, sweep.ErrTimeout) || errors.Is(runErr, context.Canceled) ||
		errors.Is(runErr, context.DeadlineExceeded)
	if runErr != nil && !truncated {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}
	if es != nil {
		// A partial trailing cell after a timeout is reported, not fatal —
		// the run error below already signals truncation.
		if err := es.Flush(); err != nil && runErr == nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		if err := eventsClose(); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}

	if err := emitOutputs(rs, g.Name, *out, *csvPath, *cellsPath, *metricsPath, *seeds); err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: sweep truncated, wrote the %d finished runs: %v\n", len(rs), runErr)
		os.Exit(1)
	}
}

// adaptiveFlags bundles the flag values the adaptive mode consumes.
type adaptiveFlags struct {
	axis                 string
	tol, threshold       float64
	minSeeds, maxSeeds   int
	workers, retries     int
	timeout              time.Duration
	quiet                bool
	shards, shardWorkers int
	journalPath          string
	resume               bool
	out, probesPath      string
	metricsPath          string
}

// runAdaptive drives the frontier search: journal/resume wiring with the
// adaptive job-count sentinel, the round-synchronous RunFrontier, and
// the frontier outputs. Exits the process on error; the journal always
// holds the completed prefix, so a killed or failed refinement resumes.
func runAdaptive(space *sweep.Space, f adaptiveFlags) {
	if f.shards > 1 {
		space.Options.Shards = f.shards
		space.Options.ShardWorkers = f.shardWorkers
	}
	runner := &sweep.Runner{Workers: f.workers, Timeout: f.timeout, Retries: f.retries}
	if !f.quiet {
		runner.Progress = sweep.NewReporter(os.Stderr, time.Second)
	}
	if f.resume && f.journalPath == "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -resume needs -journal")
		os.Exit(2)
	}
	var journal *sweep.Journal
	if f.journalPath != "" {
		var err error
		if f.resume {
			var prefix []sweep.Result
			journal, prefix, err = sweep.OpenJournalResume(f.journalPath, sweep.AdaptiveJobs)
			if err == nil && len(prefix) > 0 {
				fmt.Fprintf(os.Stderr, "lggsweep: resuming %s: %d probe runs already done\n",
					f.journalPath, len(prefix))
				runner.Resume = prefix
			}
		} else {
			journal, err = sweep.CreateJournal(f.journalPath, sweep.AdaptiveJobs)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		runner.Journal = journal
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	report, runErr := sweep.RunFrontier(ctx, space, sweep.FrontierConfig{
		Axis: f.axis, Tol: f.tol, Threshold: f.threshold,
		MinSeeds: f.minSeeds, MaxSeeds: f.maxSeeds,
	}, runner)
	stop()
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: journal: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		// Unlike an exhaustive sweep there is no meaningful partial table:
		// a bisection cut short has not located any frontier. The journal
		// (when requested) holds the finished probe prefix for -resume.
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}
	if err := emitFrontier(report, f.out, f.probesPath, f.metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
		os.Exit(1)
	}
}

// emitFrontier writes the frontier report to the adaptive outputs: the
// per-group results to out, the probe stream to probesPath, and the
// aggregate metrics scrape (over the probe runs) to metricsPath.
func emitFrontier(report *sweep.FrontierReport, out, probesPath, metricsPath string) error {
	w, closeFn, err := openOut(out)
	if err != nil {
		return err
	}
	err = sweep.WriteFrontierJSONL(w, report.Results)
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if probesPath != "" {
		if err := emitJSONL(probesPath, report.Probes); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		if err := emitMetrics(metricsPath, report.Probes); err != nil {
			return err
		}
	}
	return nil
}

// emitOutputs writes the result set to every requested output.
func emitOutputs(rs []sweep.Result, gridName, out, csvPath, cellsPath, metricsPath string, seeds int) error {
	if err := emitJSONL(out, rs); err != nil {
		return err
	}
	if csvPath != "" {
		if err := emitCSV(csvPath, gridName, rs); err != nil {
			return err
		}
	}
	if cellsPath != "" {
		if err := emitCells(cellsPath, rs, seeds); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		if err := emitMetrics(metricsPath, rs); err != nil {
			return err
		}
	}
	return nil
}

// remoteSpec maps the local sweep flags onto a daemon job spec. An @file
// fault schedule is read here — the daemon never opens client paths —
// and -timeout becomes the job's server-side deadline.
func remoteSpec(grid string, seed uint64, seeds int, horizon int64, quick bool, faultsArg string, timeout time.Duration, tenant string) server.JobSpec {
	if strings.HasPrefix(faultsArg, "@") {
		b, err := os.ReadFile(faultsArg[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: faults: %v\n", err)
			os.Exit(2)
		}
		faultsArg = string(b)
	}
	spec := server.JobSpec{
		Grid: grid, Seed: seed, Seeds: seeds, Horizon: horizon,
		Quick: quick, Faults: faultsArg, Tenant: tenant,
	}
	if timeout > 0 {
		spec.TimeoutMS = timeout.Milliseconds()
	}
	return spec
}

// runRemote submits the job through the hardened client, follows it to a
// terminal state and fetches its results. Ctrl-C detaches — the job keeps
// running on the daemon — and prints how to pick it back up.
func runRemote(addr string, spec server.JobSpec, quiet bool) ([]sweep.Result, error) {
	c, err := client.New(client.Config{BaseURL: addr})
	if err != nil {
		return nil, err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "lggsweep: submitted %s to %s\n", st.ID, addr)
	}
	for !st.Status.Terminal() {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("interrupted; job %s continues on the daemon (fetch with GET /v1/jobs/%s/results)", st.ID, st.ID)
		case <-time.After(500 * time.Millisecond):
		}
		if st, err = c.Job(ctx, st.ID); err != nil {
			return nil, err
		}
		if !quiet && st.Total > 0 {
			fmt.Fprintf(os.Stderr, "lggsweep: %s %s %d/%d runs\n", st.ID, st.Status, st.Done, st.Total)
		}
	}
	switch st.Status {
	case server.StatusFailed:
		return nil, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	case server.StatusCancelled:
		return nil, fmt.Errorf("job %s was cancelled", st.ID)
	}
	return c.Results(ctx, st.ID)
}

// openOut resolves "-" to stdout (with a no-op closer) and anything else
// to a created file.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// emitCells aggregates complete cells (a timed-out sweep's trailing
// partial cell is dropped, matching the finished-prefix semantics) and
// writes them as CSV or JSONL depending on the extension.
func emitCells(path string, rs []sweep.Result, replicas int) error {
	if replicas <= 0 {
		return fmt.Errorf("-cells needs a positive -seeds, got %d", replicas)
	}
	full := len(rs) - len(rs)%replicas
	cells, err := sweep.AggregateCells(rs[:full], replicas)
	if err != nil {
		return err
	}
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = sweep.WriteCellsCSV(w, cells)
	} else {
		err = sweep.WriteCellsJSONL(w, cells)
	}
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

func emitMetrics(path string, rs []sweep.Result) error {
	reg := metrics.NewRegistry()
	sweep.RecordMetrics(reg, rs)
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	err = reg.WriteProm(w)
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

func emitJSONL(path string, rs []sweep.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteJSONL(w, rs)
}

func emitCSV(path, name string, rs []sweep.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.ResultTable(name, rs).CSV(f)
}
