// Command lggsweep runs a named parameter grid on the parallel sweep
// runner and emits one JSON line per run (plus, optionally, a CSV table,
// per-cell aggregates, a live JSONL event stream and a Prometheus-style
// metrics scrape).
//
// Results are deterministic: each run draws its randomness only from the
// root seed and its grid index, and output is emitted in grid order, so
// the bytes — including the -events stream and the -metrics scrape —
// are identical whether the sweep runs on 1 worker or 64.
//
// Usage:
//
//	lggsweep -list
//	lggsweep -grid stability [-workers 8] [-seeds 8] [-horizon 3000] \
//	         [-seed 1] [-timeout 10m] [-out runs.jsonl] [-csv runs.csv] \
//	         [-cells cells.jsonl] [-events events.jsonl] [-metrics metrics.prom] \
//	         [-quick]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list grids and exit")
		grid        = flag.String("grid", "", "grid name to run (see -list)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "stop dispatching new runs after this long (0 = none)")
		out         = flag.String("out", "-", "JSON-lines output path (- = stdout)")
		csvPath     = flag.String("csv", "", "also write results as CSV to this path")
		cellsPath   = flag.String("cells", "", "write per-cell aggregates here (.csv = CSV, otherwise JSONL)")
		eventsPath  = flag.String("events", "", "stream per-run and per-cell JSONL events here (- = stdout)")
		metricsPath = flag.String("metrics", "", "write aggregated Prometheus text metrics here (- = stdout)")
		seed        = flag.Uint64("seed", 1, "root seed")
		seeds       = flag.Int("seeds", 8, "replicas per grid cell")
		horizon     = flag.Int64("horizon", 3000, "steps per run")
		quick       = flag.Bool("quick", false, "reduced workloads (CI sizes)")
		quiet       = flag.Bool("quiet", false, "suppress the progress reporter")
	)
	flag.Parse()

	if *list {
		for _, g := range experiments.SweepGrids() {
			fmt.Printf("%-12s %s\n", g.Name, g.Desc)
		}
		return
	}
	if *grid == "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -grid is required (try -list)")
		os.Exit(2)
	}
	g, err := experiments.FindGrid(*grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v (try -list)\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Seeds: *seeds, Horizon: *horizon, Quick: *quick}
	jobs := g.Jobs(cfg)

	runner := &sweep.Runner{Workers: *workers, Timeout: *timeout}
	if !*quiet {
		runner.Progress = sweep.NewReporter(os.Stderr, time.Second)
	}
	var es *sweep.EventStreamer
	var eventsClose func() error
	if *eventsPath != "" {
		w, closeFn, err := openOut(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		eventsClose = closeFn
		es = sweep.NewEventStreamer(w, *seeds)
		runner.OnResult = es.OnResult
	}
	rs, runErr := runner.Run(jobs)
	if runErr != nil && !errors.Is(runErr, sweep.ErrTimeout) {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}
	if es != nil {
		// A partial trailing cell after a timeout is reported, not fatal —
		// the run error below already signals truncation.
		if err := es.Flush(); err != nil && runErr == nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
		if err := eventsClose(); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}

	if err := emitJSONL(*out, rs); err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := emitCSV(*csvPath, g.Name, rs); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}
	if *cellsPath != "" {
		if err := emitCells(*cellsPath, rs, *seeds); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := emitMetrics(*metricsPath, rs); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}
}

// openOut resolves "-" to stdout (with a no-op closer) and anything else
// to a created file.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// emitCells aggregates complete cells (a timed-out sweep's trailing
// partial cell is dropped, matching the finished-prefix semantics) and
// writes them as CSV or JSONL depending on the extension.
func emitCells(path string, rs []sweep.Result, replicas int) error {
	if replicas <= 0 {
		return fmt.Errorf("-cells needs a positive -seeds, got %d", replicas)
	}
	full := len(rs) - len(rs)%replicas
	cells := sweep.AggregateCells(rs[:full], replicas)
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = sweep.WriteCellsCSV(w, cells)
	} else {
		err = sweep.WriteCellsJSONL(w, cells)
	}
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

func emitMetrics(path string, rs []sweep.Result) error {
	reg := metrics.NewRegistry()
	sweep.RecordMetrics(reg, rs)
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	err = reg.WriteProm(w)
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

func emitJSONL(path string, rs []sweep.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteJSONL(w, rs)
}

func emitCSV(path, name string, rs []sweep.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.ResultTable(name, rs).CSV(f)
}
