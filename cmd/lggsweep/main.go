// Command lggsweep runs a named parameter grid on the parallel sweep
// runner and emits one JSON line per run (plus, optionally, a CSV table).
//
// Results are deterministic: each run draws its randomness only from the
// root seed and its grid index, and output is emitted in grid order, so
// the bytes are identical whether the sweep runs on 1 worker or 64.
//
// Usage:
//
//	lggsweep -list
//	lggsweep -grid stability [-workers 8] [-seeds 8] [-horizon 3000] \
//	         [-seed 1] [-timeout 10m] [-out runs.jsonl] [-csv runs.csv] [-quick]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list grids and exit")
		grid    = flag.String("grid", "", "grid name to run (see -list)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "stop dispatching new runs after this long (0 = none)")
		out     = flag.String("out", "-", "JSON-lines output path (- = stdout)")
		csvPath = flag.String("csv", "", "also write results as CSV to this path")
		seed    = flag.Uint64("seed", 1, "root seed")
		seeds   = flag.Int("seeds", 8, "replicas per grid cell")
		horizon = flag.Int64("horizon", 3000, "steps per run")
		quick   = flag.Bool("quick", false, "reduced workloads (CI sizes)")
		quiet   = flag.Bool("quiet", false, "suppress the progress reporter")
	)
	flag.Parse()

	if *list {
		for _, g := range experiments.SweepGrids() {
			fmt.Printf("%-12s %s\n", g.Name, g.Desc)
		}
		return
	}
	if *grid == "" {
		fmt.Fprintln(os.Stderr, "lggsweep: -grid is required (try -list)")
		os.Exit(2)
	}
	g, err := experiments.FindGrid(*grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v (try -list)\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Seeds: *seeds, Horizon: *horizon, Quick: *quick}
	jobs := g.Jobs(cfg)

	runner := &sweep.Runner{Workers: *workers, Timeout: *timeout}
	if !*quiet {
		runner.Progress = sweep.NewReporter(os.Stderr, time.Second)
	}
	rs, runErr := runner.Run(jobs)
	if runErr != nil && !errors.Is(runErr, sweep.ErrTimeout) {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}

	if err := emitJSONL(*out, rs); err != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := emitCSV(*csvPath, g.Name, rs); err != nil {
			fmt.Fprintf(os.Stderr, "lggsweep: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "lggsweep: %v\n", runErr)
		os.Exit(1)
	}
}

func emitJSONL(path string, rs []sweep.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteJSONL(w, rs)
}

func emitCSV(path, name string, rs []sweep.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.ResultTable(name, rs).CSV(f)
}
