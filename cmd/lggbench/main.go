// Command lggbench runs a fixed grid of planning/step micro-benchmarks
// over representative topologies and emits the results as BENCH_step.json,
// the perf-trajectory file CI archives on every run.
//
// Each entry reports ns/step, allocs/step, B/step and sends/sec in steady
// state (the engine is warmed before measurement, so lazily-built state —
// CSR incidence, scratch buffers, the active-node list — is already in
// place). The plan/* entries isolate the router hot path on a frozen
// snapshot; the step/* entries measure the full synchronous step.
//
// Examples:
//
//	lggbench -out BENCH_step.json
//	lggbench -benchtime 5000x -note "after CSR rewrite" -out -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// result is one benchmark row of BENCH_step.json.
type result struct {
	Name        string  `json:"name"`
	Steps       int     `json:"steps"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_step"`
	BytesPerOp  int64   `json:"bytes_per_step"`
	SendsPerSec float64 `json:"sends_per_sec,omitempty"`
}

// report is the whole BENCH_step.json document.
type report struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Go        string   `json:"go"`
	GOARCH    string   `json:"goarch"`
	Note      string   `json:"note,omitempty"`
	Results   []result `json:"results"`
}

// denseSpec mirrors the dense-topology workload the in-repo zero-alloc
// gate (BenchmarkLGGPlan) runs on: an 8×8 grid with diagonal chords, a
// source column and a sink column.
func denseSpec() *core.Spec {
	const side = 8
	g := graph.Grid(side, side)
	for r := 0; r+1 < side; r++ {
		for c := 0; c+1 < side; c++ {
			g.AddEdge(graph.NodeID(r*side+c), graph.NodeID((r+1)*side+c+1))
			g.AddEdge(graph.NodeID(r*side+c+1), graph.NodeID((r+1)*side+c))
		}
	}
	s := core.NewSpec(g)
	for r := 0; r < side; r++ {
		s.SetSource(graph.NodeID(r*side), 1)
		s.SetSink(graph.NodeID(r*side+side-1), 2)
	}
	return s
}

func gridSpec(side int) *core.Spec {
	g := graph.Grid(side, side)
	s := core.NewSpec(g)
	for r := 0; r < side; r++ {
		s.SetSource(graph.NodeID(r*side), 1)
		s.SetSink(graph.NodeID(r*side+side-1), 2)
	}
	return s
}

func sparseLineSpec() *core.Spec {
	return core.NewSpec(graph.Line(4096)).SetSource(0, 1).SetSink(8, 1)
}

// workload names one benchmark: either the full step loop or the plan-only
// hot path on a warm snapshot.
type workload struct {
	name     string
	spec     func() *core.Spec
	planOnly bool
}

var workloads = []workload{
	{name: "plan/dense8x8", spec: denseSpec, planOnly: true},
	{name: "step/dense8x8", spec: denseSpec},
	{name: "step/grid16x16", spec: gridSpec16},
	{name: "step/line4096-sparse", spec: sparseLineSpec},
}

func gridSpec16() *core.Spec { return gridSpec(16) }

const warmSteps = 200

func runPlan(w workload) result {
	e := core.NewEngine(w.spec(), core.NewLGG())
	for i := 0; i < warmSteps; i++ {
		e.Step()
	}
	l := core.NewLGG()
	sn := e.Snapshot()
	buf := l.Plan(sn, nil)
	sent := 0
	steps := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = l.Plan(sn, buf[:0])
		}
		sent += b.N * len(buf)
		steps += b.N
	})
	return toResult(w.name, r, sent, steps)
}

func runStep(w workload) result {
	e := core.NewEngine(w.spec(), core.NewLGG())
	for i := 0; i < warmSteps; i++ {
		e.Step()
	}
	var sent, steps int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sent += int(e.Step().Sent)
		}
		steps += b.N
	})
	return toResult(w.name, r, sent, steps)
}

func toResult(name string, r testing.BenchmarkResult, sent, steps int) result {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := result{
		Name:        name,
		Steps:       r.N,
		NsPerStep:   ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if steps > 0 && ns > 0 {
		sendsPerStep := float64(sent) / float64(steps)
		res.SendsPerSec = sendsPerStep * 1e9 / ns
	}
	return res
}

func main() {
	var (
		out       = flag.String("out", "BENCH_step.json", "output path (- = stdout)")
		benchtime = flag.String("benchtime", "", "passed to -test.benchtime (e.g. 2000x, 1s)")
		note      = flag.String("note", "", "free-form note recorded in the report")
		list      = flag.Bool("list", false, "list workloads and exit")
	)
	testing.Init() // registers -test.* flags so -benchtime can be forwarded
	flag.Parse()

	if *list {
		for _, w := range workloads {
			fmt.Println(w.name)
		}
		return
	}
	if *benchtime != "" {
		// testing.Benchmark honours the package-level -test.benchtime flag.
		if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "lggbench: bad -benchtime: %v\n", err)
			os.Exit(2)
		}
	}

	rep := report{
		Schema:    "lggbench/step/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	for _, w := range workloads {
		var res result
		if w.planOnly {
			res = runPlan(w)
		} else {
			res = runStep(w)
		}
		fmt.Fprintf(os.Stderr, "%-22s %12.1f ns/step %6d B/step %4d allocs/step %14.0f sends/sec\n",
			res.Name, res.NsPerStep, res.BytesPerOp, res.AllocsPerOp, res.SendsPerSec)
		rep.Results = append(rep.Results, res)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lggbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lggbench: %v\n", err)
		os.Exit(1)
	}
}
