// Command lggbench runs a fixed grid of planning/step micro-benchmarks
// over representative topologies and emits the results as BENCH_step.json,
// the perf-trajectory file CI archives on every run.
//
// Each entry reports ns/step, allocs/step, B/step and sends/sec in steady
// state (the engine is warmed before measurement, so lazily-built state —
// CSR incidence, scratch buffers, the active-node list — is already in
// place). The plan/* entries isolate the router hot path on a frozen
// snapshot; the step/* entries measure the full synchronous step.
//
// With -shard it additionally benchmarks the partition-parallel step path
// on 64k–1M node sparse topologies, writing BENCH_shard.json with the
// measured speedup of each shard count over the serial engine. With
// -gate FILE it compares the step results against a committed
// BENCH_step.json and exits non-zero when ns/step regresses beyond the
// tolerance or when any allocation-free path starts allocating — the CI
// bench gate.
//
// Examples:
//
//	lggbench -out BENCH_step.json
//	lggbench -benchtime 5000x -note "after CSR rewrite" -out -
//	lggbench -shard -shardout BENCH_shard.json
//	lggbench -quick -shard -gate BENCH_step.json -out /tmp/step.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/shard"
)

// result is one benchmark row of BENCH_step.json.
type result struct {
	Name        string  `json:"name"`
	Steps       int     `json:"steps"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_step"`
	BytesPerOp  int64   `json:"bytes_per_step"`
	SendsPerSec float64 `json:"sends_per_sec,omitempty"`
}

// report is the whole BENCH_step.json document.
type report struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Go        string   `json:"go"`
	GOARCH    string   `json:"goarch"`
	Note      string   `json:"note,omitempty"`
	Results   []result `json:"results"`
}

// denseSpec mirrors the dense-topology workload the in-repo zero-alloc
// gate (BenchmarkLGGPlan) runs on: an 8×8 grid with diagonal chords, a
// source column and a sink column.
func denseSpec() *core.Spec {
	const side = 8
	g := graph.Grid(side, side)
	for r := 0; r+1 < side; r++ {
		for c := 0; c+1 < side; c++ {
			g.AddEdge(graph.NodeID(r*side+c), graph.NodeID((r+1)*side+c+1))
			g.AddEdge(graph.NodeID(r*side+c+1), graph.NodeID((r+1)*side+c))
		}
	}
	s := core.NewSpec(g)
	for r := 0; r < side; r++ {
		s.SetSource(graph.NodeID(r*side), 1)
		s.SetSink(graph.NodeID(r*side+side-1), 2)
	}
	return s
}

func gridSpec(side int) *core.Spec {
	g := graph.Grid(side, side)
	s := core.NewSpec(g)
	for r := 0; r < side; r++ {
		s.SetSource(graph.NodeID(r*side), 1)
		s.SetSink(graph.NodeID(r*side+side-1), 2)
	}
	return s
}

func sparseLineSpec() *core.Spec {
	return core.NewSpec(graph.Line(4096)).SetSource(0, 1).SetSink(8, 1)
}

// workload names one benchmark: either the full step loop or the plan-only
// hot path on a warm snapshot.
type workload struct {
	name     string
	spec     func() *core.Spec
	planOnly bool
}

var workloads = []workload{
	{name: "plan/dense8x8", spec: denseSpec, planOnly: true},
	{name: "step/dense8x8", spec: denseSpec},
	{name: "step/grid16x16", spec: gridSpec16},
	{name: "step/line4096-sparse", spec: sparseLineSpec},
}

func gridSpec16() *core.Spec { return gridSpec(16) }

const warmSteps = 200

// shardResult is one row of BENCH_shard.json. Shards == 1 rows are the
// serial reference the speedup column is measured against.
type shardResult struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Steps       int     `json:"steps"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_step"`
	BytesPerOp  int64   `json:"bytes_per_step"`
	Speedup     float64 `json:"speedup_vs_serial,omitempty"`
}

// shardReport is the whole BENCH_shard.json document.
type shardReport struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated"`
	Go        string        `json:"go"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Note      string        `json:"note,omitempty"`
	Results   []shardResult `json:"results"`
}

// shardCase is one sharded-step workload: a long sparse line with a
// source/sink pair near one end, so in steady state traffic occupies a
// handful of nodes and all but one shard stays clean. This is the regime
// the sharded engine targets: LGG routing is local, so on localized
// workloads the dirty-shard bookkeeping skips the O(n) snapshot/stats
// sweeps that dominate the serial step at these sizes.
type shardCase struct {
	name   string
	nodes  int
	shards []int
}

func shardCases(quick bool) []shardCase {
	if quick {
		return []shardCase{{"line64k", 1 << 16, []int{8}}}
	}
	return []shardCase{
		{"line64k", 1 << 16, []int{2, 8}},
		{"line256k", 1 << 18, []int{2, 8}},
		{"line1M", 1 << 20, []int{8, 64}},
	}
}

// shardLineSpec mirrors sparseLineSpec at parametric size: source at node
// 0 injecting 1/step, sink at node 8 draining 1/step.
func shardLineSpec(n int) *core.Spec {
	return core.NewSpec(graph.Line(n)).SetSource(0, 1).SetSink(8, 1)
}

// runShardStep measures the steady-state step over spec with the given
// shard count (1 = serial engine, no sharding enabled). Workers is pinned
// to 1: the speedups here come from clean-shard skipping, not goroutines,
// and the inline path is the allocation-free one the gate checks.
func runShardStep(name string, nodes, shards int) shardResult {
	spec := shardLineSpec(nodes)
	e := core.NewEngine(spec, core.NewLGG())
	workers := 0
	if shards > 1 {
		workers = 1
		p := shard.ByRange(spec.G, shards)
		if err := e.EnableSharding(p, workers); err != nil {
			fmt.Fprintf(os.Stderr, "lggbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	for i := 0; i < warmSteps; i++ {
		e.Step()
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	return shardResult{
		Name:        name,
		Nodes:       nodes,
		Shards:      shards,
		Workers:     workers,
		Steps:       r.N,
		NsPerStep:   float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// runShardSuite benchmarks every shard case serially and at each shard
// count, filling in the speedup column from the matching serial row.
func runShardSuite(quick bool, note string) shardReport {
	rep := shardReport{
		Schema:    "lggbench/shard/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note:      note,
	}
	for _, c := range shardCases(quick) {
		serial := runShardStep(c.name+"/serial", c.nodes, 1)
		printShard(serial)
		rep.Results = append(rep.Results, serial)
		for _, k := range c.shards {
			res := runShardStep(fmt.Sprintf("%s/shards%d", c.name, k), c.nodes, k)
			if res.NsPerStep > 0 {
				res.Speedup = serial.NsPerStep / res.NsPerStep
			}
			printShard(res)
			rep.Results = append(rep.Results, res)
		}
	}
	return rep
}

func printShard(r shardResult) {
	fmt.Fprintf(os.Stderr, "%-18s %12.1f ns/step %6d B/step %4d allocs/step",
		r.Name, r.NsPerStep, r.BytesPerOp, r.AllocsPerOp)
	if r.Speedup > 0 {
		fmt.Fprintf(os.Stderr, "   %5.2fx vs serial", r.Speedup)
	}
	fmt.Fprintln(os.Stderr)
}

// gate compares fresh step results against a committed baseline report
// and checks the alloc budgets, returning the violations. A workload is
// only compared when the baseline has a row of the same name, so adding
// workloads does not break the gate.
func gate(fresh []result, shardFresh []shardResult, baselinePath string, tolerance float64) []string {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return []string{fmt.Sprintf("cannot read baseline %s: %v", baselinePath, err)}
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("cannot parse baseline %s: %v", baselinePath, err)}
	}
	byName := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	var bad []string
	for _, r := range fresh {
		b, ok := byName[r.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/step (budget is 0)", r.Name, r.AllocsPerOp))
		}
		if limit := b.NsPerStep * (1 + tolerance); r.NsPerStep > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/step exceeds baseline %.0f +%.0f%% (%.0f)",
				r.Name, r.NsPerStep, b.NsPerStep, tolerance*100, limit))
		}
	}
	// The sharded step path shares the serial engine's zero-alloc budget:
	// any allocation in steady state is a regression regardless of speed.
	for _, r := range shardFresh {
		if r.Shards > 1 && r.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: sharded step allocates (%d allocs/step, budget is 0)", r.Name, r.AllocsPerOp))
		}
	}
	return bad
}

func runPlan(w workload) result {
	e := core.NewEngine(w.spec(), core.NewLGG())
	for i := 0; i < warmSteps; i++ {
		e.Step()
	}
	l := core.NewLGG()
	sn := e.Snapshot()
	buf := l.Plan(sn, nil)
	sent := 0
	steps := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = l.Plan(sn, buf[:0])
		}
		sent += b.N * len(buf)
		steps += b.N
	})
	return toResult(w.name, r, sent, steps)
}

func runStep(w workload) result {
	e := core.NewEngine(w.spec(), core.NewLGG())
	for i := 0; i < warmSteps; i++ {
		e.Step()
	}
	var sent, steps int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sent += int(e.Step().Sent)
		}
		steps += b.N
	})
	return toResult(w.name, r, sent, steps)
}

func runWorkload(w workload) result {
	if w.planOnly {
		return runPlan(w)
	}
	return runStep(w)
}

func toResult(name string, r testing.BenchmarkResult, sent, steps int) result {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := result{
		Name:        name,
		Steps:       r.N,
		NsPerStep:   ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if steps > 0 && ns > 0 {
		sendsPerStep := float64(sent) / float64(steps)
		res.SendsPerSec = sendsPerStep * 1e9 / ns
	}
	return res
}

func main() {
	var (
		out       = flag.String("out", "BENCH_step.json", "output path (- = stdout)")
		benchtime = flag.String("benchtime", "", "passed to -test.benchtime (e.g. 2000x, 1s)")
		note      = flag.String("note", "", "free-form note recorded in the report")
		list      = flag.Bool("list", false, "list workloads and exit")
		shardRun  = flag.Bool("shard", false, "also run the sharded-step suite and write -shardout")
		shardOut  = flag.String("shardout", "BENCH_shard.json", "shard-suite output path (- = stdout)")
		quick     = flag.Bool("quick", false, "CI mode: smallest shard case and a short benchtime")
		gateFile  = flag.String("gate", "", "baseline BENCH_step.json to gate against (exit 1 on regression)")
		gateTol   = flag.Float64("gate-tolerance", 0.30, "allowed ns/step regression fraction in -gate mode")
	)
	testing.Init() // registers -test.* flags so -benchtime can be forwarded
	flag.Parse()

	if *list {
		for _, w := range workloads {
			fmt.Println(w.name)
		}
		for _, c := range shardCases(*quick) {
			fmt.Printf("shard/%s\n", c.name)
		}
		return
	}
	if *benchtime == "" && *quick {
		*benchtime = "0.3s"
	}
	if *benchtime != "" {
		// testing.Benchmark honours the package-level -test.benchtime flag.
		if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "lggbench: bad -benchtime: %v\n", err)
			os.Exit(2)
		}
	}

	rep := report{
		Schema:    "lggbench/step/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Note:      *note,
	}
	// In gate mode each workload is measured three times and the fastest
	// run kept: min-of-N approximates the true cost floor on noisy shared
	// runners, where a single short sample can swing far beyond the gate
	// tolerance. Alloc counts are deterministic, so the max is kept — a
	// single allocating run is a real regression, not noise.
	runs := 1
	if *gateFile != "" {
		runs = 3
	}
	for _, w := range workloads {
		res := runWorkload(w)
		for i := 1; i < runs; i++ {
			r2 := runWorkload(w)
			if r2.NsPerStep < res.NsPerStep {
				res.NsPerStep, res.Steps, res.SendsPerSec = r2.NsPerStep, r2.Steps, r2.SendsPerSec
			}
			if r2.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp, res.BytesPerOp = r2.AllocsPerOp, r2.BytesPerOp
			}
		}
		fmt.Fprintf(os.Stderr, "%-22s %12.1f ns/step %6d B/step %4d allocs/step %14.0f sends/sec\n",
			res.Name, res.NsPerStep, res.BytesPerOp, res.AllocsPerOp, res.SendsPerSec)
		rep.Results = append(rep.Results, res)
	}

	writeJSON(*out, rep)

	var shardRep shardReport
	if *shardRun {
		shardRep = runShardSuite(*quick, *note)
		writeJSON(*shardOut, shardRep)
	}

	if *gateFile != "" {
		if bad := gate(rep.Results, shardRep.Results, *gateFile, *gateTol); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "lggbench: GATE FAIL: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lggbench: gate passed against %s (tolerance %.0f%%)\n", *gateFile, *gateTol*100)
	}
}

func writeJSON(path string, doc any) {
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lggbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lggbench: %v\n", err)
		os.Exit(1)
	}
}
