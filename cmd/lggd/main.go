// Command lggd is the simulation daemon: it accepts sweep jobs over an
// HTTP/JSON API, executes them on a bounded worker pool, and is built to
// stay correct under the unglamorous realities of a long-lived service —
// overload, deadlines, client retries, kill -9 and kill -TERM.
//
//   - Overload sheds at the edge: a full admission queue answers 429 with
//     a Retry-After derived from the measured service rate, the service
//     analogue of the paper's saturated regime (bounded state by refusing
//     excess arrivals rather than growing an unbounded backlog).
//   - Every job transition is fsynced to a JSONL ledger and every
//     finished run to a sweep journal, so a killed daemon restarts with
//     nothing lost: unfinished jobs resume exactly where their journals
//     end and — by the sweep determinism contract — complete with results
//     byte-identical to an uninterrupted execution.
//   - SIGTERM/SIGINT drains gracefully: admission closes (readyz → 503),
//     in-flight jobs get -drain-grace to finish, stragglers are
//     checkpointed mid-sweep, and the process exits 0. A second signal
//     force-quits.
//
// With -coordinator the process is instead a federation coordinator: it
// serves the same job API but executes nothing itself, sharding each job
// by run-index range across a fleet of ordinary lggd workers (seeded
// with -fleet, grown at runtime via POST /v1/fleet/join or peer gossip
// with -peers) and k-way merging their journals into results
// byte-identical to a single daemon's. Straggler leases adapt to each
// worker's measured service rate (-lease is just the ceiling), erroring
// workers are browned out and drained instead of fed more ranges, and
// departed workers age out through -suspect-after/-dead-after instead
// of holding leases. Tenants are isolated by -tenant-quota with
// fair-share dispatch, and finished jobs compact into per-cell
// summaries at GET /v1/results. A worker started with -join (one or
// more coordinator URLs, comma-separated) registers itself and
// re-registers on a jittered cadence, so a restarted coordinator
// re-learns its fleet without a thundering herd.
//
// With -coordinator -standby -primary http://coord:8321 the process is
// a warm standby: it refuses submissions (503 + Retry-After), tails the
// primary's /v1/coordinator/status every -heartbeat, and after
// -failover-after without a successful heartbeat promotes itself —
// re-queueing every in-flight job, whose output stays byte-identical to
// an unfailed run because worker-side idempotency keys re-attach the
// surviving range jobs. Standbys stack into a rank order: -rank fixes a
// coordinator's place in the failover chain and -watch lists the
// better-ranked coordinators it must also monitor, so rank 2 defers to
// a live rank 1 even with the primary dead, and an acting primary that
// sees a watched coordinator claim leadership with a higher epoch (or
// an equal epoch and lower rank, after a healed partition) demotes
// itself instead of split-brain dispatching.
//
// -chaos arms a deterministic fault injector over every outbound HTTP
// call the process makes (worker dispatch, heartbeat polls, gossip,
// fleet joins): a seeded schedule of latency spikes, connection resets,
// blackholes, 5xx bursts, slow-loris stalls and asymmetric partitions,
// replayed byte-identically from -chaos-seed. -chaos-transcript writes
// the injected-event log on clean exit. See internal/chaos.
//
// Usage:
//
//	lggd [-addr 127.0.0.1:8321] [-state lggd-state] [-jobs 2] [-queue 16]
//	     [-sweep-workers 0] [-retries 0] [-drain-grace 30s]
//	     [-join http://coord:8321,http://coord2:8321] [-advertise http://me:8321]
//	     [-capacity 12.5]
//	lggd -coordinator [-fleet url1,url2] [-peers http://coord2:8321]
//	     [-range-runs 8] [-lease 60s] [-tenant-quota 4] [-keep-journals 0]
//	     [-suspect-after 75s] [-dead-after 150s] [-retry-budget 0] [...]
//	lggd -coordinator -standby -primary http://coord:8321 [-rank 1]
//	     [-watch http://rank1:8321] [-heartbeat 1s] [-failover-after 5s] [...]
//	lggd ... -chaos 'reset@0-8:p=0.5;latency@0-64:ms=5' -chaos-seed 42
//	     [-chaos-name rank1] [-chaos-endpoints primary=127.0.0.1:8450]
//	     [-chaos-transcript chaos.log]
//
// API: POST /v1/jobs, GET /v1/jobs[/{id}[/results]], DELETE /v1/jobs/{id},
// GET /healthz, /readyz, /metrics; coordinator adds POST /v1/fleet/join,
// GET /v1/fleet, GET /v1/coordinator/status and GET /v1/results. See
// internal/server and internal/server/federation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/federation"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8321", "listen address")
		state   = flag.String("state", "lggd-state", "state directory (job ledger + result journals)")
		jobs    = flag.Int("jobs", 2, "concurrent job executors")
		queue   = flag.Int("queue", 16, "admission queue depth; beyond it submissions are shed with 429")
		workers = flag.Int("sweep-workers", 0, "worker pool per sweep (0 = GOMAXPROCS)")
		retries = flag.Int("retries", 0, "re-attempts for a run that panics")
		grace   = flag.Duration("drain-grace", 30*time.Second, "how long a drain lets in-flight jobs finish before checkpointing them")

		coordinator  = flag.Bool("coordinator", false, "run as a federation coordinator: shard jobs across a worker fleet instead of executing them")
		fleetArg     = flag.String("fleet", "", "coordinator: comma-separated worker base URLs seeding the fleet")
		peersArg     = flag.String("peers", "", "coordinator: comma-separated peer coordinator URLs to gossip fleet membership with")
		rangeRuns    = flag.Int("range-runs", 8, "coordinator: runs per range handed to one worker")
		lease        = flag.Duration("lease", 60*time.Second, "coordinator: straggler-lease ceiling; actual leases adapt to each worker's measured service rate")
		tenantQuota  = flag.Int("tenant-quota", 4, "coordinator: max live (queued+running) jobs per tenant; negative = unlimited")
		keepJournals = flag.Int("keep-journals", 0, "coordinator: after compaction keep only this many merged journals (0 = all)")
		suspectAfter = flag.Duration("suspect-after", 75*time.Second, "coordinator: mark a worker suspect after this long without contact")
		deadAfter    = flag.Duration("dead-after", 0, "coordinator: drop a worker after this long without contact (0 = 2×-suspect-after)")
		brownoutErr  = flag.Float64("brownout-err-rate", 0.5, "coordinator: smoothed attempt-error share that browns a worker out of dispatch")
		brownoutCool = flag.Duration("brownout-cooldown", 20*time.Second, "coordinator: how long a browned-out worker sits before a half-open probe")

		standby       = flag.Bool("standby", false, "coordinator: run as a warm standby that tails -primary and takes over on missed heartbeats")
		primary       = flag.String("primary", "", "standby: the primary coordinator's base URL")
		rank          = flag.Int("rank", 0, "coordinator: fixed failover rank (0 = primary; standbys default to 1)")
		watchArg      = flag.String("watch", "", "coordinator: comma-separated URLs of other coordinators in the failover chain to monitor (a standby watches better-ranked standbys; an acting primary demotes itself to a higher-authority claimant here)")
		heartbeat     = flag.Duration("heartbeat", time.Second, "standby: upstream status-poll cadence")
		failoverAfter = flag.Duration("failover-after", 5*time.Second, "standby: promote after this long with the whole upstream chain silent")
		retryBudget   = flag.Duration("retry-budget", 0, "coordinator: deadline cap on one logical worker request across all its retries (0 = attempts-only)")

		join      = flag.String("join", "", "worker: register with the federation coordinator(s) at these comma-separated URLs and re-register on a jittered cadence")
		advertise = flag.String("advertise", "", "worker: base URL advertised on -join (default http://<addr>)")
		capacity  = flag.Float64("capacity", 0, "worker: declared service rate in runs/sec advertised on -join (0 = undeclared); dispatch weights by max(declared, observed)")

		chaosArg        = flag.String("chaos", "", "inject deterministic faults into this process's outbound HTTP: a chaos schedule (text or JSON, @file to load), e.g. 'reset@0-8:p=0.5;latency@0-64:ms=5'")
		chaosSeed       = flag.Uint64("chaos-seed", 1, "chaos: RNG seed; same schedule+seed replays the same injected-event transcript")
		chaosName       = flag.String("chaos-name", "lggd", "chaos: this process's endpoint name (the src side of r=src>dst routes)")
		chaosEndpoints  = flag.String("chaos-endpoints", "", "chaos: comma-separated name=host:port pairs naming remote endpoints for route matching")
		chaosTranscript = flag.String("chaos-transcript", "", "chaos: write the injected-event transcript to this file on clean exit")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	if *coordinator && *join != "" {
		log.Fatalf("lggd: -join is a worker flag; a coordinator's fleet comes from -fleet, -peers and /v1/fleet/join")
	}
	if *standby && !*coordinator {
		log.Fatalf("lggd: -standby requires -coordinator")
	}
	if *standby && *primary == "" {
		log.Fatalf("lggd: -standby requires -primary (the coordinator to tail)")
	}
	if (*rank != 0 || *watchArg != "" || *retryBudget != 0) && !*coordinator {
		log.Fatalf("lggd: -rank, -watch and -retry-budget are coordinator flags")
	}
	if *capacity < 0 {
		log.Fatalf("lggd: -capacity must be non-negative")
	}

	// The chaos injector, when configured, owns every outbound HTTP call
	// this process makes — a coordinator's worker dispatch, a standby's
	// heartbeat polls, peer gossip, and a worker's fleet joins all share
	// it, so one seeded schedule is one reproducible adversary for the
	// whole process. A nil injector leaves every path untouched.
	var injector *chaos.Injector
	if *chaosArg != "" {
		sched, err := chaos.Load(*chaosArg)
		if err != nil {
			log.Fatalf("lggd: -chaos: %v", err)
		}
		injector, err = chaos.NewInjector(sched, *chaosSeed)
		if err != nil {
			log.Fatalf("lggd: -chaos: %v", err)
		}
		for _, pair := range strings.Split(*chaosEndpoints, ",") {
			if pair = strings.TrimSpace(pair); pair == "" {
				continue
			}
			name, hostport, ok := strings.Cut(pair, "=")
			if !ok || name == "" || hostport == "" {
				log.Fatalf("lggd: -chaos-endpoints: %q is not name=host:port", pair)
			}
			injector.Register(name, stripScheme(hostport))
		}
		log.Printf("lggd: chaos schedule armed (seed %d): %s", *chaosSeed, chaos.FormatText(sched))
	}

	var (
		handler http.Handler
		drainFn func(context.Context) error
		role    string
	)
	if *coordinator {
		ccfg := client.Config{RetryBudget: *retryBudget}
		if injector != nil {
			ccfg.HTTP = &http.Client{Transport: injector.Transport(*chaosName, nil)}
		}
		coord, err := federation.New(federation.Config{
			StateDir:      *state,
			Workers:       splitURLs(*fleetArg),
			Peers:         splitURLs(*peersArg),
			Jobs:          *jobs,
			QueueDepth:    *queue,
			TenantQuota:   *tenantQuota,
			RangeRuns:     *rangeRuns,
			Lease:         *lease,
			KeepJournals:  *keepJournals,
			SuspectAfter:  *suspectAfter,
			DeadAfter:     *deadAfter,
			Standby:       *standby,
			Primary:       *primary,
			Rank:          *rank,
			Watch:         splitURLs(*watchArg),
			Heartbeat:     *heartbeat,
			FailoverAfter: *failoverAfter,
			Client:        ccfg,
			Health: federation.HealthConfig{
				BrownoutErrRate:  *brownoutErr,
				BrownoutCooldown: *brownoutCool,
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("lggd: %v", err)
		}
		handler, drainFn, role = coord.Handler(), coord.Drain, "coordinator"
		if *standby {
			role = "standby coordinator"
		}
	} else {
		srv, err := server.New(server.Config{
			StateDir:     *state,
			Jobs:         *jobs,
			QueueDepth:   *queue,
			SweepWorkers: *workers,
			Retries:      *retries,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("lggd: %v", err)
		}
		handler, drainFn, role = srv.Handler(), srv.Drain, "worker"
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lggd: %v", err)
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("lggd: %s listening on %s (state %s, %d executors, queue %d)",
		role, ln.Addr(), *state, *jobs, *queue)

	stopJoin := make(chan struct{})
	if *join != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		httpc := &http.Client{Timeout: 10 * time.Second}
		if injector != nil {
			httpc.Transport = injector.Transport(*chaosName, nil)
		}
		for _, coordURL := range splitURLs(*join) {
			go joinLoop(httpc, coordURL, self, *capacity, stopJoin)
		}
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("lggd: serve: %v", err)
	case sig := <-sigc:
		close(stopJoin)
		log.Printf("lggd: %v: draining (grace %v; signal again to force quit)", sig, *grace)
		go func() {
			<-sigc
			log.Printf("lggd: second signal, force quit")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		drainErr := drainFn(ctx)
		cancel()
		// Drain closed admission and ended result streams; now close the
		// listener and let straggling handlers return.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := hs.Shutdown(shutCtx)
		cancel()
		if drainErr != nil {
			log.Fatalf("lggd: drain: %v", drainErr)
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("lggd: shutdown: %v", err)
		}
		if injector != nil && *chaosTranscript != "" {
			if err := writeTranscript(injector, *chaosTranscript); err != nil {
				log.Fatalf("lggd: chaos transcript: %v", err)
			}
			log.Printf("lggd: chaos transcript (%d injected events) written to %s",
				len(injector.Transcript()), *chaosTranscript)
		}
		log.Printf("lggd: drained cleanly")
	}
}

// writeTranscript dumps the injector's injected-event log — sorted by
// (route, slot), so byte-comparable across runs of the same
// schedule+seed and workload.
func writeTranscript(in *chaos.Injector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := in.WriteTranscript(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stripScheme reduces a URL-ish endpoint argument to host:port, the form
// chaos route matching uses.
func stripScheme(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	return strings.TrimSuffix(s, "/")
}

// splitURLs parses a comma-separated URL list flag.
func splitURLs(arg string) []string {
	var urls []string
	for _, u := range strings.Split(arg, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// joinLoop registers this worker with one coordinator, then re-registers
// (joins are idempotent) so a restarted coordinator re-learns the fleet
// without operator action — every ~30s when joined, on a shorter cadence
// after a failure. Both cadences are jittered across [d/2, 3d/2): a
// fleet restarted together must not re-join in lockstep and thundering-
// herd the coordinator every interval thereafter.
// Each join re-POST doubles as a heartbeat carrying the worker's
// declared capacity hint, so a re-tuned worker propagates its new rate
// within one cadence.
func joinLoop(httpc *http.Client, coordURL, self string, capacity float64, stop <-chan struct{}) {
	body, _ := json.Marshal(struct {
		URL      string  `json:"url"`
		Capacity float64 `json:"capacity_runs_per_sec,omitempty"`
	}{self, capacity})
	url := strings.TrimRight(coordURL, "/")
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url += "/v1/fleet/join"
	joined := false
	for {
		resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			resp.Body.Close()
		}
		switch {
		case ok && !joined:
			log.Printf("lggd: joined fleet at %s as %s", coordURL, self)
			joined = true
		case !ok:
			if err == nil {
				err = fmt.Errorf("coordinator answered %d", resp.StatusCode)
			}
			log.Printf("lggd: fleet join %s: %v (will retry)", coordURL, err)
			joined = false
		}
		delay := 30 * time.Second
		if !joined {
			delay = 3 * time.Second
		}
		delay = delay/2 + time.Duration(rand.Float64()*float64(delay))
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
	}
}
