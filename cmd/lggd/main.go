// Command lggd is the simulation daemon: it accepts sweep jobs over an
// HTTP/JSON API, executes them on a bounded worker pool, and is built to
// stay correct under the unglamorous realities of a long-lived service —
// overload, deadlines, client retries, kill -9 and kill -TERM.
//
//   - Overload sheds at the edge: a full admission queue answers 429 with
//     a Retry-After derived from the measured service rate, the service
//     analogue of the paper's saturated regime (bounded state by refusing
//     excess arrivals rather than growing an unbounded backlog).
//   - Every job transition is fsynced to a JSONL ledger and every
//     finished run to a sweep journal, so a killed daemon restarts with
//     nothing lost: unfinished jobs resume exactly where their journals
//     end and — by the sweep determinism contract — complete with results
//     byte-identical to an uninterrupted execution.
//   - SIGTERM/SIGINT drains gracefully: admission closes (readyz → 503),
//     in-flight jobs get -drain-grace to finish, stragglers are
//     checkpointed mid-sweep, and the process exits 0. A second signal
//     force-quits.
//
// Usage:
//
//	lggd [-addr 127.0.0.1:8321] [-state lggd-state] [-jobs 2] [-queue 16]
//	     [-sweep-workers 0] [-retries 0] [-drain-grace 30s]
//
// API: POST /v1/jobs, GET /v1/jobs[/{id}[/results]], DELETE /v1/jobs/{id},
// GET /healthz, /readyz, /metrics. See internal/server.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8321", "listen address")
		state   = flag.String("state", "lggd-state", "state directory (job ledger + result journals)")
		jobs    = flag.Int("jobs", 2, "concurrent job executors")
		queue   = flag.Int("queue", 16, "admission queue depth; beyond it submissions are shed with 429")
		workers = flag.Int("sweep-workers", 0, "worker pool per sweep (0 = GOMAXPROCS)")
		retries = flag.Int("retries", 0, "re-attempts for a run that panics")
		grace   = flag.Duration("drain-grace", 30*time.Second, "how long a drain lets in-flight jobs finish before checkpointing them")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	srv, err := server.New(server.Config{
		StateDir:     *state,
		Jobs:         *jobs,
		QueueDepth:   *queue,
		SweepWorkers: *workers,
		Retries:      *retries,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("lggd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lggd: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("lggd: listening on %s (state %s, %d executors, queue %d)",
		ln.Addr(), *state, *jobs, *queue)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("lggd: serve: %v", err)
	case sig := <-sigc:
		log.Printf("lggd: %v: draining (grace %v; signal again to force quit)", sig, *grace)
		go func() {
			<-sigc
			log.Printf("lggd: second signal, force quit")
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		drainErr := srv.Drain(ctx)
		cancel()
		// Drain closed admission and ended result streams; now close the
		// listener and let straggling handlers return.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := hs.Shutdown(shutCtx)
		cancel()
		if drainErr != nil {
			log.Fatalf("lggd: drain: %v", drainErr)
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("lggd: shutdown: %v", err)
		}
		log.Printf("lggd: drained cleanly")
	}
}
