// Command lgggen generates multigraphs in the text codec consumed by
// lggflow (`nodes N` / `edge U V` lines).
//
// Examples:
//
//	lgggen -topo random -n 20 -m 40 -seed 7 > net.g
//	lgggen -topo theta -paths 4 -len 3
//	lgggen -topo grid -rows 5 -cols 5 -thicken 6
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	var (
		topo    = flag.String("topo", "random", "topology: random|gnp|line|cycle|grid|torus|complete|star|theta|barbell|layered|geometric")
		n       = flag.Int("n", 16, "node count (random/gnp/line/cycle/complete/star/geometric)")
		m       = flag.Int("m", 32, "edge count (random)")
		p       = flag.Float64("p", 0.3, "edge probability (gnp/layered)")
		rows    = flag.Int("rows", 4, "grid/torus rows")
		cols    = flag.Int("cols", 4, "grid/torus cols")
		paths   = flag.Int("paths", 3, "theta paths")
		length  = flag.Int("len", 2, "theta path length")
		k       = flag.Int("k", 3, "barbell clique size")
		bridge  = flag.Int("bridge", 2, "barbell bridge length")
		layers  = flag.Int("layers", 4, "layered layer count")
		width   = flag.Int("width", 3, "layered width")
		radius  = flag.Float64("radius", 0.35, "geometric connection radius")
		thicken = flag.Int("thicken", 0, "add this many parallel copies of random edges")
		seed    = flag.Uint64("seed", 1, "seed for random topologies")
	)
	flag.Parse()

	r := rng.New(*seed)
	var g *graph.Multigraph
	switch *topo {
	case "random":
		g = graph.RandomMultigraph(*n, *m, r)
	case "gnp":
		g = graph.ConnectedGNP(*n, *p, r)
	case "line":
		g = graph.Line(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "torus":
		g = graph.Torus(*rows, *cols)
	case "complete":
		g = graph.Complete(*n)
	case "star":
		g = graph.Star(*n)
	case "theta":
		g = graph.ThetaGraph(*paths, *length)
	case "barbell":
		g = graph.Barbell(*k, *bridge)
	case "layered":
		g = graph.Layered(*layers, *width, *p, r)
	case "geometric":
		g, _ = graph.RandomGeometric(*n, *radius, r)
	default:
		fmt.Fprintf(os.Stderr, "lgggen: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	if *thicken > 0 {
		g = graph.Thicken(g, *thicken, r)
	}
	if err := graph.Encode(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "lgggen: %v\n", err)
		os.Exit(1)
	}
}
