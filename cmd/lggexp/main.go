// Command lggexp runs the reproduction experiments (one per theorem,
// property, figure and conjecture of the paper) and prints their tables.
//
// Usage:
//
//	lggexp -list
//	lggexp -run E4 [-seeds 8] [-horizon 3000] [-seed 1] [-csv]
//	lggexp -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "", "experiment id to run (e.g. E4)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "reduced workloads (CI sizes)")
		seed    = flag.Uint64("seed", 1, "root seed")
		seeds   = flag.Int("seeds", 8, "independent runs per cell")
		horizon = flag.Int64("horizon", 3000, "steps per run")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outdir  = flag.String("outdir", "", "also write <ID>.txt and <ID>.csv per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Seeds: *seeds, Horizon: *horizon, Quick: *quick}
	if *quick {
		q := experiments.QuickConfig()
		q.Seed = *seed
		cfg = q
	}

	emit := func(t *experiments.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err == nil && *outdir != "" {
			err = writeOut(*outdir, t)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lggexp: %v\n", err)
			os.Exit(1)
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lggexp: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for _, e := range experiments.All() {
			emit(e.Run(cfg))
		}
	case *run != "":
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "lggexp: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		emit(e.Run(cfg))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeOut persists one experiment's table as <ID>.txt and <ID>.csv.
func writeOut(dir string, t *experiments.Table) error {
	txt, err := os.Create(filepath.Join(dir, t.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.Render(txt); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	return t.CSV(csvFile)
}
