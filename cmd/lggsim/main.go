// Command lggsim runs a single S-D-network simulation and reports the
// stability verdict, run statistics and (optionally) the P_t time series
// as CSV, live per-step JSONL events, and a Prometheus-style metrics
// scrape.
//
// Examples:
//
//	lggsim -topo theta -paths 3 -len 2 -in 2 -out 3 -horizon 5000
//	lggsim -topo grid -rows 4 -cols 6 -in 1 -out 3 -router shortest -load 0.9
//	lggsim -topo random -n 20 -m 40 -loss 0.1 -series series.csv
//	lggsim -topo line -n 8 -metrics - -events steps.jsonl -eventstride 100
//	lggsim -topo theta -faults 'burst@500-1500:pg=0.05,pb=0.7,gb=0.1,bg=0.3'
//	lggsim -topo grid -faults @schedule.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arrivals"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/interference"
	"repro/internal/loss"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/viz"
)

func main() {
	var (
		topo        = flag.String("topo", "theta", "topology: theta|line|grid|random|barbell")
		paths       = flag.Int("paths", 3, "theta: number of disjoint paths")
		length      = flag.Int("len", 2, "theta: path length (edges)")
		n           = flag.Int("n", 12, "line/random: node count")
		m           = flag.Int("m", 24, "random: edge count")
		rows        = flag.Int("rows", 4, "grid: rows")
		cols        = flag.Int("cols", 6, "grid: cols")
		srcRows     = flag.Int("srcrows", 2, "grid: rows carrying a source")
		k           = flag.Int("k", 3, "barbell: clique size")
		bridge      = flag.Int("bridge", 2, "barbell: bridge length")
		in          = flag.Int64("in", 2, "per-source injection capacity in(s)")
		out         = flag.Int64("out", 3, "per-sink extraction capacity out(d)")
		router      = flag.String("router", "lgg", "router: lgg|flow|gradient|shortest|random|null")
		horizon     = flag.Int64("horizon", 5000, "steps to simulate")
		seed        = flag.Uint64("seed", 1, "root seed")
		lossP       = flag.Float64("loss", 0, "Bernoulli loss probability")
		thin        = flag.Float64("thin", 1, "arrival thinning probability (1 = exact)")
		loadN       = flag.Int64("loadnum", 0, "scale arrivals by loadnum/loadden (0 = off)")
		loadD       = flag.Int64("loadden", 1, "load denominator")
		retain      = flag.Int64("retention", 0, "retention constant R on all terminals")
		declare     = flag.String("declare", "truth", "declaration policy: truth|zero|max")
		interf      = flag.String("interference", "", "interference: ''|greedy|oracle (node-exclusive)")
		faultsArg   = flag.String("faults", "", "fault schedule: 'kind@from-to:params;…' text, JSON, or @file")
		series      = flag.String("series", "", "write t,P,N,maxQ CSV to this file")
		show        = flag.Bool("viz", false, "render backlog sparkline and final queue state")
		metricsPath = flag.String("metrics", "", "write Prometheus text metrics after the run (- = stdout)")
		eventsPath  = flag.String("events", "", "stream per-step JSONL events to this file (- = stdout)")
		eventStride = flag.Int64("eventstride", 1, "emit only every Nth step event")
		shards      = flag.Int("shards", 0, "run the step loop over this many partition shards (0/1 = serial; output is byte-identical either way)")
		shardWk     = flag.Int("shard-workers", 0, "intra-step worker goroutines when sharded (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec, err := buildSpec(*topo, *paths, *length, *n, *m, *rows, *cols, *srcRows, *k, *bridge, *in, *out, *seed)
	if err != nil {
		fatal(err)
	}
	if *retain > 0 {
		for v := range spec.R {
			if spec.In[v] > 0 || spec.Out[v] > 0 {
				spec.R[v] = *retain
			}
		}
	}

	a := spec.Analyze(flow.NewPushRelabel())
	fmt.Printf("network:     %s\n", spec)
	fmt.Printf("class:       %v (rate=%d, maxflow=%d, f*=%d)\n",
		a.Feasibility, a.ArrivalRate, a.MaxFlow.Value, a.FStar)

	rt, err := buildRouter(*router, spec, *seed)
	if err != nil {
		fatal(err)
	}
	e := core.NewEngine(spec, rt)
	if *lossP > 0 {
		e.Loss = &loss.Bernoulli{P: *lossP, R: rng.New(*seed).Split(1)}
	}
	if *thin < 1 {
		e.Arrivals = &arrivals.Thinned{P: *thin, R: rng.New(*seed).Split(2)}
	}
	if *loadN > 0 {
		e.Arrivals = &arrivals.Scaled{Inner: e.Arrivals, Num: *loadN, Den: *loadD}
	}
	switch *declare {
	case "truth":
	case "zero":
		e.Declare = core.DeclareZero{}
	case "max":
		e.Declare = core.DeclareR{}
	default:
		fatal(fmt.Errorf("unknown declaration policy %q", *declare))
	}
	switch *interf {
	case "":
	case "greedy":
		e.Interference = interference.NewGreedy(interference.NodeExclusive)
	case "oracle":
		e.Interference = interference.NewOracle(interference.NodeExclusive)
	default:
		fatal(fmt.Errorf("unknown interference scheduler %q", *interf))
	}

	// Fault injection: compile the schedule against the spec's graph and
	// hang it off the engine's hooks, plus a recovery observer for the
	// post-fault verdict.
	var recObs *faults.RecoveryObserver
	if *faultsArg != "" {
		sched, err := faults.Load(*faultsArg)
		if err != nil {
			fatal(err)
		}
		if _, err := faults.Inject(e, sched, rng.New(*seed).Split(0xFA)); err != nil {
			fatal(err)
		}
		recObs = faults.NewRecoveryObserver(sched)
		e.AddObserver(recObs)
		fmt.Printf("faults:      %s\n", faults.FormatText(sched))
	}

	// Observability: registry-backed metrics and/or a live event stream
	// hang off the engine's step-observer hook.
	var reg *metrics.Registry
	if *metricsPath != "" {
		reg = metrics.NewRegistry()
		e.AddObserver(metrics.NewStepMetrics(reg))
		e.AddObserver(metrics.NewDriftObserver(reg))
	}
	var ew *metrics.EventWriter
	var eventsClose func() error
	if *eventsPath != "" {
		w, closeFn, err := openOut(*eventsPath)
		if err != nil {
			fatal(err)
		}
		eventsClose = closeFn
		ew = metrics.NewEventWriter(w)
		if *eventStride > 1 {
			ew.Stride = *eventStride
		}
		e.AddObserver(ew)
	}

	if *shards > 1 {
		if _, ok := rt.(core.ShardableRouter); !ok {
			fmt.Fprintf(os.Stderr, "lggsim: router %s is not shardable; running serial (results are identical)\n", rt.Name())
		} else {
			fmt.Printf("sharding:    %d shards, %d workers\n", *shards, *shardWk)
		}
	}
	res := sim.Run(e, sim.Options{Horizon: *horizon, Shards: *shards, ShardWorkers: *shardWk})
	if ew != nil {
		if err := ew.Flush(); err != nil {
			fatal(err)
		}
		if err := eventsClose(); err != nil {
			fatal(err)
		}
	}
	tt := res.Totals
	fmt.Printf("router:      %s\n", rt.Name())
	fmt.Printf("steps:       %d\n", tt.Steps)
	fmt.Printf("injected:    %d\n", tt.Injected)
	fmt.Printf("delivered:   %d (%.1f%%)\n", tt.Extracted, pct(tt.Extracted, tt.Injected))
	fmt.Printf("lost:        %d\n", tt.Lost)
	fmt.Printf("stored:      %d (peak %d)\n", tt.FinalQueued, tt.PeakQueued)
	fmt.Printf("peak P_t:    %d\n", tt.PeakPotential)
	fmt.Printf("verdict:     %v (slope %.4f, rel-growth %.4f)\n",
		res.Diagnosis.Verdict, res.Diagnosis.Slope, res.Diagnosis.RelGrowth)
	if recObs != nil {
		rec := recObs.Report()
		fmt.Printf("recovery:    %v (time-to-drain %d, fault peak P %d, fault peak N %d)\n",
			rec.Verdict, rec.TimeToDrain, rec.PeakPotential, rec.PeakBacklog)
		if reg != nil {
			recObs.Record(reg)
		}
	}

	if *show {
		fmt.Printf("backlog N_t: |%s|\n", viz.Sparkline(viz.Downsample(res.Series.Queued, 72)))
		fmt.Printf("state P_t:   |%s|\n", viz.Sparkline(viz.Downsample(res.Series.Potential, 72)))
		if *topo == "grid" {
			fmt.Printf("final queues:\n%s", viz.GridHeat(e.Q, *rows, *cols))
		} else {
			fmt.Printf("final queues:\n%s", viz.QueueBars(e.Q))
		}
	}

	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "t,potential,queued,maxq")
		for i := range res.Series.Potential {
			fmt.Fprintf(f, "%d,%.0f,%.0f,%.0f\n", int64(i)*res.Series.Stride,
				res.Series.Potential[i], res.Series.Queued[i], res.Series.MaxQ[i])
		}
		fmt.Printf("series:      %s (%d samples)\n", *series, len(res.Series.Potential))
	}

	if reg != nil {
		w, closeFn, err := openOut(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteProm(w); err != nil {
			fatal(err)
		}
		if err := closeFn(); err != nil {
			fatal(err)
		}
	}
}

// openOut resolves "-" to stdout (with a no-op closer) and anything else
// to a created file.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func buildSpec(topo string, paths, length, n, m, rows, cols, srcRows, k, bridge int, in, out int64, seed uint64) (*core.Spec, error) {
	switch topo {
	case "theta":
		g := graph.ThetaGraph(paths, length)
		return core.NewSpec(g).SetSource(0, in).SetSink(1, out), nil
	case "line":
		g := graph.Line(n)
		return core.NewSpec(g).SetSource(0, in).SetSink(graph.NodeID(n-1), out), nil
	case "grid":
		g := graph.Grid(rows, cols)
		s := core.NewSpec(g)
		for r := 0; r < srcRows && r < rows; r++ {
			s.SetSource(graph.NodeID(r*cols), in)
		}
		for r := 0; r < rows; r++ {
			s.SetSink(graph.NodeID(r*cols+cols-1), out)
		}
		return s, nil
	case "random":
		g := graph.RandomMultigraph(n, m, rng.New(seed))
		return core.NewSpec(g).SetSource(0, in).SetSink(graph.NodeID(n-1), out), nil
	case "barbell":
		g := graph.Barbell(k, bridge)
		return core.NewSpec(g).SetSource(0, in).SetSink(graph.NodeID(g.NumNodes()-1), out), nil
	}
	return nil, fmt.Errorf("unknown topology %q", topo)
}

func buildRouter(name string, spec *core.Spec, seed uint64) (core.Router, error) {
	switch name {
	case "lgg":
		return core.NewLGG(), nil
	case "flow":
		return baseline.NewFlowRouter(spec, flow.NewPushRelabel())
	case "gradient":
		return baseline.NewFullGradient(), nil
	case "shortest":
		return baseline.NewShortestPath(spec), nil
	case "random":
		return baseline.NewRandomForward(rng.New(seed).Split(9)), nil
	case "null":
		return baseline.Null{}, nil
	}
	return nil, fmt.Errorf("unknown router %q", name)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lggsim: %v\n", err)
	os.Exit(1)
}
