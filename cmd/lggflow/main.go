// Command lggflow analyzes the feasibility of an S-D-network (Section
// II-B): it builds the extended graph G*, computes the maximum flow and
// f*, classifies the network (infeasible / saturated / unsaturated),
// prints the minimum cuts and the flow's path decomposition, and can
// compute the Lemma 1 constants.
//
// The graph is read from a file in the text codec of internal/graph
// (`nodes N` then `edge U V [count]` lines) or generated with -topo.
//
// Examples:
//
//	lgggen -topo random -n 20 -m 40 > net.g
//	lggflow -graph net.g -src 0=2 -sink 19=3 -paths -bounds
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cutsplit"
	"repro/internal/flow"
	"repro/internal/graph"
)

type roleFlags map[graph.NodeID]int64

func (r roleFlags) String() string { return fmt.Sprintf("%v", map[graph.NodeID]int64(r)) }

func (r roleFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want node=capacity, got %q", s)
	}
	v, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node %q", parts[0])
	}
	c, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("bad capacity %q", parts[1])
	}
	r[graph.NodeID(v)] = c
	return nil
}

func main() {
	srcs := roleFlags{}
	sinks := roleFlags{}
	var (
		graphFile = flag.String("graph", "", "graph file (text codec); '-' for stdin; roles via -src/-sink")
		specFile  = flag.String("spec", "", "full spec file (graph + source/sink/retain directives)")
		showPaths = flag.Bool("paths", false, "print the flow path decomposition")
		showCuts  = flag.Bool("cuts", false, "print minimum cut node sets")
		allCuts   = flag.Bool("allcuts", false, "enumerate every minimum cut (Picard–Queyranne)")
		bounds    = flag.Bool("bounds", false, "print Lemma 1 constants (unsaturated only)")
		bottle    = flag.Bool("bottlenecks", false, "print the weakest node pairs (Gomory–Hu all-pairs min cuts)")
		split     = flag.Bool("split", false, "decompose at an interior min cut (Section V-C)")
		dot       = flag.String("dot", "", "write Graphviz DOT with roles to this file")
	)
	flag.Var(srcs, "src", "source as node=in(s); repeatable")
	flag.Var(sinks, "sink", "sink as node=out(d); repeatable")
	flag.Parse()

	var spec *core.Spec
	switch {
	case *specFile != "":
		f, err := openArg(*specFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		spec, err = core.DecodeSpec(f)
		if err != nil {
			fatal(err)
		}
	case *graphFile != "":
		f, err := openArg(*graphFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := graph.Decode(f)
		if err != nil {
			fatal(err)
		}
		spec = core.NewSpec(g)
		for v, c := range srcs {
			spec.SetSource(v, c)
		}
		for v, c := range sinks {
			spec.SetSink(v, c)
		}
		if err := spec.Validate(); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "lggflow: -graph or -spec is required (use lgggen to make one)")
		os.Exit(2)
	}
	g := spec.G

	a := spec.Analyze(flow.NewPushRelabel())
	fmt.Printf("network:  %s\n", spec)
	fmt.Printf("class:    %v\n", a.Feasibility)
	fmt.Printf("rate:     %d\n", a.ArrivalRate)
	fmt.Printf("maxflow:  %d\n", a.MaxFlow.Value)
	fmt.Printf("f*:       %d\n", a.FStar)
	kase, exhaustive := cutsplit.InductionCaseExact(a, 256)
	note := ""
	if !exhaustive {
		note = " (enumeration capped; case 2 not certain)"
	}
	fmt.Printf("case:     %d (Section V induction case)%s\n", kase, note)

	if *showCuts {
		fmt.Printf("min cut (minimal side): %s\n", cutNodes(a.MinimalCut, spec.N()))
		fmt.Printf("min cut (maximal side): %s\n", cutNodes(a.MaximalCut, spec.N()))
	}
	if *allCuts {
		for i, mask := range flow.EnumerateMinCuts(a.MaxFlow, 256) {
			fmt.Printf("min cut %d: %s\n", i, cutNodes(mask, spec.N()))
		}
	}
	if *showPaths {
		for i, p := range a.Ext.SDPaths(a.MaxFlow) {
			fmt.Printf("path %d (×%d): %v\n", i, p.Amount, p.Nodes)
		}
	}
	if *bottle {
		tree := flow.GomoryHu(g, flow.NewPushRelabel())
		for _, p := range tree.WeakestPairs(8) {
			fmt.Printf("bottleneck: %d–%d cut=%d\n", p.U, p.V, p.Cut)
		}
	}
	if *bounds {
		b, err := core.ComputeBounds(spec, flow.NewPushRelabel())
		if err != nil {
			fmt.Printf("bounds:   %v\n", err)
		} else {
			fmt.Printf("ε:        %.4f\n", b.Eps)
			fmt.Printf("5nΔ²:     %.0f\n", b.GrowthBound)
			fmt.Printf("Y:        %.4g\n", b.Y)
			fmt.Printf("nY²+5nΔ²: %.4g\n", b.StateBound)
		}
	}
	if *split {
		s, err := splitAnywhere(spec, a)
		if err != nil {
			fmt.Printf("split:    %v\n", err)
		} else {
			_, _, err := s.Check(flow.NewPushRelabel())
			ok := "parts feasible"
			if err != nil {
				ok = err.Error()
			}
			fmt.Printf("split:    |A'|=%d |B'|=%d cut-edges=%d (%s)\n",
				s.A.Spec.N(), s.B.Spec.N(), len(s.CutEdges), ok)
		}
	}
	if *dot != "" {
		df, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		defer df.Close()
		err = graph.DOT(df, g, func(v graph.NodeID) string {
			switch {
			case spec.In[v] > 0 && spec.Out[v] > 0:
				return fmt.Sprintf("%d src/snk", v)
			case spec.In[v] > 0:
				return fmt.Sprintf("%d src(%d)", v, spec.In[v])
			case spec.Out[v] > 0:
				return fmt.Sprintf("%d snk(%d)", v, spec.Out[v])
			}
			return ""
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dot:      %s\n", *dot)
	}
}

// splitAnywhere splits at the maximal min cut when it is interior,
// falling back to any enumerated interior minimum cut.
func splitAnywhere(spec *core.Spec, a *flow.Analysis) (*cutsplit.Split, error) {
	if s, err := cutsplit.FromAnalysis(spec, a, 0); err == nil {
		return s, nil
	}
	mask, ok := cutsplit.FindInteriorCut(a, 256)
	if !ok {
		return nil, fmt.Errorf("no interior minimum cut (induction base case)")
	}
	return cutsplit.At(spec, mask, 0)
}

func openArg(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdin, nil
	}
	return os.Open(path)
}

func cutNodes(side []bool, n int) string {
	var parts []string
	for v := 0; v < n; v++ {
		if side[v] {
			parts = append(parts, strconv.Itoa(v))
		}
	}
	if len(parts) == 0 {
		return "{s* only}"
	}
	return "{s*, " + strings.Join(parts, ", ") + "}"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lggflow: %v\n", err)
	os.Exit(1)
}
