// Command lggtrace runs an LGG simulation under the Lyapunov recorder and
// exports the paper's per-step potential decomposition (Equations 1–3) as
// CSV, plus a JSON run summary. Useful for plotting δ_t, the gradient
// term, and the loss correction over time.
//
// Example:
//
//	lggtrace -topo theta -paths 3 -len 2 -in 2 -out 3 -horizon 2000 \
//	         -terms terms.csv -summary run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		topo    = flag.String("topo", "theta", "topology: theta|line|grid")
		paths   = flag.Int("paths", 3, "theta: disjoint paths")
		length  = flag.Int("len", 2, "theta: path length")
		n       = flag.Int("n", 8, "line: node count")
		rows    = flag.Int("rows", 4, "grid rows")
		cols    = flag.Int("cols", 6, "grid cols")
		in      = flag.Int64("in", 2, "in(s)")
		out     = flag.Int64("out", 3, "out(d)")
		horizon = flag.Int64("horizon", 2000, "steps")
		lossP   = flag.Float64("loss", 0, "Bernoulli loss probability")
		seed    = flag.Uint64("seed", 1, "seed")
		terms   = flag.String("terms", "", "write per-step Lyapunov terms CSV here")
		summary = flag.String("summary", "", "write JSON run summary here")
	)
	flag.Parse()

	var spec *core.Spec
	switch *topo {
	case "theta":
		spec = core.NewSpec(graph.ThetaGraph(*paths, *length)).SetSource(0, *in).SetSink(1, *out)
	case "line":
		spec = core.NewSpec(graph.Line(*n)).SetSource(0, *in).SetSink(graph.NodeID(*n-1), *out)
	case "grid":
		g := graph.Grid(*rows, *cols)
		spec = core.NewSpec(g)
		spec.SetSource(0, *in)
		for r := 0; r < *rows; r++ {
			spec.SetSink(graph.NodeID(r**cols+*cols-1), *out)
		}
	default:
		fatal(fmt.Errorf("unknown topology %q", *topo))
	}

	mkEngine := func() *core.Engine {
		e := core.NewEngine(spec, core.NewLGG())
		if *lossP > 0 {
			e.Loss = &loss.Bernoulli{P: *lossP, R: rng.New(*seed)}
		}
		return e
	}

	// Pass 1: Lyapunov terms.
	ts, err := trace.CollectTerms(mkEngine(), *horizon)
	if err != nil {
		fatal(err)
	}
	var maxDelta, maxDP int64
	for _, t := range ts {
		if t.Delta > maxDelta {
			maxDelta = t.Delta
		}
		if t.DeltaP > maxDP {
			maxDP = t.DeltaP
		}
	}
	fmt.Printf("network:    %s\n", spec)
	fmt.Printf("verified:   %d transitions, identities exact\n", len(ts))
	fmt.Printf("max δ_t:    %d\n", maxDelta)
	fmt.Printf("max ΔP:     %d (Property 1 bound 5nΔ² = %d)\n", maxDP,
		5*int64(spec.N())*int64(spec.Delta())*int64(spec.Delta()))
	if *terms != "" {
		f, err := os.Create(*terms)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteTermsCSV(f, ts); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("terms:      %s\n", *terms)
	}

	// Pass 2: plain run for the summary (identical dynamics, fresh seed).
	res := sim.Run(mkEngine(), sim.Options{Horizon: *horizon})
	fmt.Printf("verdict:    %v\n", res.Diagnosis.Verdict)
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSON(f, trace.Summarize(spec, "lgg", res)); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("summary:    %s\n", *summary)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lggtrace: %v\n", err)
	os.Exit(1)
}
