// Command lggchain solves small S-D-networks exactly as Markov chains:
// it enumerates every queue state LGG can reach under i.i.d. arrivals,
// certifies boundedness by exhaustion (Definition 2 for the instance),
// and prints the stationary backlog/potential together with the most
// likely states.
//
// Examples:
//
//	lggchain -topo theta -paths 2 -len 2 -in 2 -out 2 -thin 0.6
//	lggchain -topo line -n 5 -in 1 -out 1 -thin 0.85 -states
//	lggchain -spec net.spec -thin 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		topo      = flag.String("topo", "theta", "topology: theta|line")
		paths     = flag.Int("paths", 2, "theta paths")
		length    = flag.Int("len", 2, "theta path length")
		n         = flag.Int("n", 4, "line nodes")
		in        = flag.Int64("in", 2, "in(s)")
		out       = flag.Int64("out", 2, "out(d)")
		specFile  = flag.String("spec", "", "spec file instead of -topo")
		thin      = flag.Float64("thin", 1, "per-packet arrival probability (1 = exact arrivals)")
		cap       = flag.Int64("cap", 256, "per-node queue cap (enumeration aborts above it)")
		maxStates = flag.Int("maxstates", 500000, "state-count cap")
		states    = flag.Bool("states", false, "list the stationary distribution's top states")
	)
	flag.Parse()

	var spec *core.Spec
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		spec, err = core.DecodeSpec(f)
		if err != nil {
			fatal(err)
		}
	} else {
		switch *topo {
		case "theta":
			spec = core.NewSpec(graph.ThetaGraph(*paths, *length)).SetSource(0, *in).SetSink(1, *out)
		case "line":
			spec = core.NewSpec(graph.Line(*n)).SetSource(0, *in).SetSink(graph.NodeID(*n-1), *out)
		default:
			fatal(fmt.Errorf("unknown topology %q", *topo))
		}
	}

	var dist chain.IIDArrivals
	if *thin >= 1 {
		dist = chain.Exact(spec)
	} else {
		dist = chain.ThinnedBinomial(spec, *thin)
	}

	fmt.Printf("network:      %s\n", spec)
	fmt.Printf("arrivals:     %d outcomes (thin=%g)\n", len(dist), *thin)
	c, err := chain.Build(spec, dist, chain.Options{MaxStates: *maxStates, CapPerNode: *cap})
	if err != nil {
		fmt.Printf("enumeration:  %v\n", err)
		fmt.Println("verdict:      NOT certified bounded (cap hit — instance may be unstable)")
		os.Exit(1)
	}
	fmt.Printf("states:       %d reachable (exhaustive)\n", c.NumStates())
	fmt.Printf("max backlog:  %d packets — Definition 2 certified by exhaustion\n", c.MaxBacklog())

	pi, err := c.Stationary(500000, 1e-12)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E[N]:         %.6f packets (stationary)\n", c.ExpectedBacklog(pi))
	fmt.Printf("E[P]:         %.6f (stationary network state)\n", c.ExpectedPotential(pi))
	tail := c.BacklogTail(pi)
	fmt.Print("P[N≥k]:       ")
	for k, p := range tail {
		if k > 8 {
			fmt.Print("…")
			break
		}
		fmt.Printf("k=%d:%.4f ", k, p)
	}
	fmt.Println()

	if *states {
		type sp struct {
			s int
			p float64
		}
		var list []sp
		for s, p := range pi {
			if p > 1e-12 {
				list = append(list, sp{s, p})
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i].p > list[j].p })
		if len(list) > 20 {
			list = list[:20]
		}
		fmt.Println("top stationary states:")
		for _, x := range list {
			fmt.Printf("  %v  %.6f\n", c.States[x.s], x.p)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lggchain: %v\n", err)
	os.Exit(1)
}
